#include "attacks/evasive.hpp"

#include <memory>
#include <sstream>

#include "arch/msr.hpp"
#include "attacks/rootkit.hpp"
#include "auditors/hrkd.hpp"
#include "core/hypertap.hpp"
#include "exec/worker_pool.hpp"
#include "hav/exit_engine.hpp"
#include "hv/machine.hpp"
#include "journal/journal.hpp"
#include "os/syscalls.hpp"
#include "util/rng.hpp"

namespace hypertap::attacks {

// ----------------------------- The probe --------------------------------

EvasiveProbe::EvasiveProbe(Config cfg, std::function<void(SimTime)> on_strike,
                           std::function<void(SimTime)> on_unhide)
    : cfg_(cfg), on_strike_(std::move(on_strike)),
      on_unhide_(std::move(on_unhide)) {}

void EvasiveProbe::strike(SimTime now) {
  if (struck_ && cfg_.tactic != EvasionTactic::kGoQuietDkom) return;
  struck_ = true;
  hidden_ = true;
  if (strike_time_ < 0) strike_time_ = now;
  if (on_strike_) on_strike_(now);
  if (cfg_.tactic != EvasionTactic::kGoQuietDkom) {
    unhide_at_ = now + cfg_.strike_hold;
  }
}

void EvasiveProbe::unhide(SimTime now) {
  if (!hidden_) return;
  hidden_ = false;
  if (on_unhide_) on_unhide_(now);
  if (cfg_.tactic != EvasionTactic::kGoQuietDkom) done_ = true;
}

void EvasiveProbe::classify(SimTime now) {
  // Measurement channel per tactic: syscall round trip (t2 - t1) or the
  // TSC-rebase read-back (t2 - rebase constant).
  const i64 delta =
      cfg_.tactic == EvasionTactic::kMsrProbe
          ? static_cast<i64>(last_tsc_) - static_cast<i64>(cfg_.msr_rebase)
          : static_cast<i64>(last_tsc_) - static_cast<i64>(t1_);
  ++probes_;
  if (baseline_ < 0 || delta < baseline_) baseline_ = delta;
  const bool loud = delta > baseline_ + cfg_.threshold_cycles;

  if (loud) {
    ++loud_samples_;
    ++loud_streak_;
    quiet_streak_ = 0;
    if (loud_streak_ >= cfg_.onset_debounce) loud_seen_ = true;
  } else {
    ++quiet_streak_;
    if (quiet_streak_ >= cfg_.onset_debounce) loud_streak_ = 0;
  }

  // Debounced level tracking + quiet-onset edge. An onset only counts
  // after the monitor has been HEARD at least once — during initial
  // calibration everything sits at the baseline and means nothing.
  const bool was_loud = level_loud_;
  if (loud_streak_ >= cfg_.onset_debounce) level_loud_ = true;
  if (quiet_streak_ >= cfg_.onset_debounce) level_loud_ = false;
  const bool quiet_onset = was_loud && !level_loud_ && loud_seen_;
  if (quiet_onset) {
    ++onsets_;
    if (last_onset_ >= 0) onset_period_ = now - last_onset_;
    last_onset_ = now;
  }

  switch (cfg_.tactic) {
    case EvasionTactic::kExitLatencyProbe:
    case EvasionTactic::kMsrProbe:
      // One-shot: strike at the first confirmed quiet onset.
      if (!done_ && !struck_ && quiet_onset) strike(now);
      break;
    case EvasionTactic::kCadenceLearner:
      // Learn the duty-cycle period from two onsets, then go dark and
      // strike blind in the middle of the predicted NEXT quiet window.
      if (!struck_ && planned_strike_ < 0 && onset_period_ > 0) {
        planned_strike_ = last_onset_ + onset_period_ + 10'000'000;
      }
      // Blinded fallback: a monitor that fully masks its overhead looks
      // exactly like no monitor at all — after the deadline the rational
      // move is to assume the latter and strike.
      if (!struck_ && planned_strike_ < 0 && !loud_seen_ &&
          now >= cfg_.blind_deadline) {
        blind_fallback_ = true;
        planned_strike_ = now;
      }
      if (!done_ && !struck_ && planned_strike_ >= 0 &&
          now >= planned_strike_) {
        strike(now);
      }
      break;
    case EvasionTactic::kGoQuietDkom:
      // Persistent toggle: hidden exactly while the monitor is quiet.
      // Unhide reacts to a SINGLE loud sample (losing a few hundred
      // microseconds of stealth beats eating an audit while hidden).
      if (!hidden_ && loud_seen_ && !level_loud_ && quiet_streak_ >=
          cfg_.onset_debounce) {
        strike(now);
      }
      if (hidden_ && loud) unhide(now);
      break;
    case EvasionTactic::kCount:
      break;
  }

  // One-shot hold expiry: surface again before anyone gets suspicious of
  // a long-missing pid.
  if (hidden_ && unhide_at_ >= 0 && now >= unhide_at_) unhide(now);
}

os::Action EvasiveProbe::next(os::TaskCtx& ctx) {
  switch (phase_) {
    case Phase::kT1:
      // Finished one-shot attackers idle quietly instead of probing on.
      if (done_) return os::ActCompute{1'000'000};
      phase_ = Phase::kOp;
      if (cfg_.tactic == EvasionTactic::kMsrProbe) {
        // The rebase IS the first timestamp; skip the leading read.
        return os::ActWrmsr{arch::IA32_TIME_STAMP_COUNTER, cfg_.msr_rebase};
      }
      return os::ActRdtsc{};
    case Phase::kOp:
      t1_ = last_tsc_;
      phase_ = Phase::kT2;
      if (cfg_.tactic == EvasionTactic::kMsrProbe) return os::ActRdtsc{};
      return os::ActSyscall{os::SYS_GETPID};
    case Phase::kT2:
      if (cfg_.tactic == EvasionTactic::kMsrProbe) {
        classify(ctx.now);
        phase_ = Phase::kT1;
        return os::ActCompute{cfg_.gap_cycles};
      }
      phase_ = Phase::kClassify;
      return os::ActRdtsc{};
    case Phase::kClassify:
    default:
      classify(ctx.now);
      phase_ = Phase::kT1;
      return os::ActCompute{cfg_.gap_cycles};
  }
}

// -------------------------- Cell construction ---------------------------

namespace {

/// Keeps the victim's CPU busy with visible, ordinary activity (context
/// switches feed HRKD's scheduled-task shadow).
class BusyVictim final : public os::Workload {
 public:
  os::Action next(os::TaskCtx&) override {
    if ((i_ ^= 1) != 0) return os::ActCompute{400'000};
    return os::ActSyscall{os::SYS_GETPID};
  }
  std::string name() const override { return "victim"; }
  int i_ = 0;
};

/// Non-critical telemetry auditor watching the event kinds an evasive
/// guest exercises. Its per-event enqueue cost is the guest-visible
/// loudness the probes measure; the degradation ladder sheds it first.
class WatchAuditor final : public Auditor {
 public:
  std::string name() const override { return "watch"; }
  EventMask subscriptions() const override {
    return event_bit(EventKind::kSyscall) | event_bit(EventKind::kMsrWrite) |
           event_bit(EventKind::kRdtsc);
  }
  void on_event(const Event&, AuditContext&) override { ++seen_; }
  Cycles audit_cost_cycles() const override { return 900; }
  u64 seen() const { return seen_; }

 private:
  u64 seen_ = 0;
};

}  // namespace

const std::vector<EvasionArm>& evasion_arms() {
  static const std::vector<EvasionArm> arms = {
      {"none", {}},
      {"jitter", {false, 96, false}},
      {"tsc_offset", {true, 0, false}},
      {"rand_audit", {false, 0, true}},
      {"hardened", {true, 96, true}},
  };
  return arms;
}

EvasionCellResult run_evasion_cell(const EvasionCellConfig& cfg) {
  hv::MachineConfig mc;
  mc.num_vcpus = 2;
  os::Vm vm(mc);

  HyperTap::Options opts;
  opts.multiplexer.enqueue_cycles = cfg.enqueue_cycles;
  HyperTap ht(vm, opts);

  std::unique_ptr<journal::JournalWriter> writer;
  if (cfg.journal_store != nullptr) {
    writer = std::make_unique<journal::JournalWriter>(*cfg.journal_store);
    ht.attach_journal(writer.get());
  }

  auditors::Hrkd::Config hc;
  hc.check_period = cfg.hrkd_check_period;
  auto hrkd_owned = std::make_unique<auditors::Hrkd>(
      hc, [&k = vm.kernel]() { return k.in_guest_view_pids(); });
  auto* hrkd = hrkd_owned.get();
  ht.add_auditor(std::move(hrkd_owned));
  ht.add_auditor(std::make_unique<WatchAuditor>());

  if (cfg.cm.randomized_audit) {
    ht.multiplexer().set_sampling_seed(util::stream_seed(cfg.seed, 1));
  }
  hav::TscPolicy policy;
  policy.offset_exit_cost = cfg.cm.tsc_offset;
  policy.jitter_cycles = cfg.cm.tsc_jitter;
  policy.jitter_seed = util::stream_seed(cfg.seed, 2);
  vm.machine.engine().set_tsc_policy(policy);

  vm.kernel.boot();

  const u32 victim = vm.kernel.spawn("victim", 1000, 1000, 1,
                                     std::make_unique<BusyVictim>(), 0, 0);
  vm.kernel.spawn("decoy", 1000, 1000, 1, std::make_unique<BusyVictim>(), 0,
                  0);

  Rootkit rk(vm.kernel,
             RootkitSpec{"evasive-kit", "Linux",
                         {HideTechnique::kKmem, HideTechnique::kDkom,
                          HideTechnique::kSyscallHijack}});
  auto probe_owned = std::make_unique<EvasiveProbe>(
      cfg.probe, [&rk, victim](SimTime) { rk.hide(victim); },
      [&rk, victim](SimTime) { rk.unhide(victim); });
  auto* probe = probe_owned.get();
  vm.kernel.spawn("updated", 1000, 1000, 1, std::move(probe_owned), 0, 1);

  // The overload duty cycle the attacker learns: audits degrade to the
  // invariant-only rung every other epoch (PR 7's pressure valve, here
  // driven open-loop so the square wave is clean).
  auto* em = &ht.multiplexer();
  auto epoch_counter = std::make_shared<u64>(0);
  vm.machine.schedule_every(
      cfg.epoch, [em, epoch_counter, sample_every = cfg.sample_every]() {
        const bool degraded = (++*epoch_counter % 2) == 1;
        em->set_audit_mode(degraded
                               ? EventMultiplexer::AuditMode::kInvariantOnly
                               : EventMultiplexer::AuditMode::kFull,
                           sample_every);
        return true;
      });

  vm.machine.run_for(cfg.duration);
  ht.flush_delivery();

  EvasionCellResult r;
  r.struck = probe->struck();
  r.detected = hrkd->hidden_pids().count(victim) != 0;
  r.evaded = r.struck && !r.detected;
  r.strike_time = probe->strike_time();
  r.probes = probe->probes();
  r.loud_samples = probe->loud_samples();
  r.onsets = probe->onsets();
  r.blind_fallback = probe->used_blind_fallback();
  r.rdtsc_exits =
      vm.machine.engine().total_exit_count(hav::ExitReason::kRdtsc);
  return r;
}

// ------------------------------ Campaign --------------------------------

std::vector<EvasionCellOutcome> run_evasion_campaign(
    const EvasionSweepConfig& cfg) {
  std::vector<EvasionArm> arms;
  for (const auto& a : evasion_arms()) {
    if (cfg.quick && a.name != "none" && a.name != "hardened") continue;
    arms.push_back(a);
  }
  const std::vector<AttackScenario> tactics =
      scenarios_of(ScenarioKind::kEvasive);

  struct Cell {
    std::size_t index;  ///< stable: arm index in the FULL arm list x tactic
    EvasionArm arm;
    AttackScenario scenario;
  };
  std::vector<Cell> cells;
  for (const auto& arm : arms) {
    // Stable index from the full arm catalog, so quick mode and the full
    // sweep derive identical per-cell seeds for shared cells.
    std::size_t arm_idx = 0;
    for (; arm_idx < evasion_arms().size(); ++arm_idx) {
      if (evasion_arms()[arm_idx].name == arm.name) break;
    }
    for (std::size_t t = 0; t < tactics.size(); ++t) {
      cells.push_back(Cell{arm_idx * tactics.size() + t, arm, tactics[t]});
    }
  }

  std::vector<EvasionCellOutcome> out(cells.size());
  exec::WorkerPool pool(cfg.threads);
  pool.parallel_for(cells.size(), [&](std::size_t i) {
    const Cell& c = cells[i];
    EvasionCellConfig cc;
    cc.tactic = c.scenario.tactic;
    cc.cm = c.arm.cm;
    cc.seed = util::stream_seed(cfg.seed, c.index);
    cc.probe.tactic = c.scenario.tactic;
    EvasionCellOutcome o;
    o.arm = c.arm.name;
    o.tactic = c.scenario.name;
    o.result = run_evasion_cell(cc);
    out[i] = std::move(o);  // slotted by index: order-independent
  });
  return out;
}

std::string outcome_digest(const std::vector<EvasionCellOutcome>& outcomes) {
  std::ostringstream os;
  for (const auto& o : outcomes) {
    os << o.arm << "/" << o.tactic << ":struck=" << o.result.struck
       << ",detected=" << o.result.detected << ",evaded=" << o.result.evaded
       << ",t=" << o.result.strike_time << ",probes=" << o.result.probes
       << ",loud=" << o.result.loud_samples << ",onsets=" << o.result.onsets
       << ",blind=" << o.result.blind_fallback
       << ",rdtsc_exits=" << o.result.rdtsc_exits << ";";
  }
  return os.str();
}

}  // namespace hypertap::attacks
