#include "attacks/registry.hpp"

namespace hypertap::attacks {

const char* to_string(EvasionTactic t) {
  switch (t) {
    case EvasionTactic::kExitLatencyProbe: return "exit-latency-probe";
    case EvasionTactic::kMsrProbe: return "msr-probe";
    case EvasionTactic::kCadenceLearner: return "cadence-learner";
    case EvasionTactic::kGoQuietDkom: return "go-quiet-dkom";
    case EvasionTactic::kCount: break;
  }
  return "?";
}

const std::vector<AttackScenario>& attack_scenarios() {
  static const std::vector<AttackScenario> catalog = [] {
    std::vector<AttackScenario> v;
    // Table III side-channel rows: one per O-Ninja interval.
    for (const u32 s : {1u, 2u, 4u, 8u}) {
      AttackScenario a;
      a.kind = ScenarioKind::kSideChannel;
      a.name = "side-channel-" + std::to_string(s) + "s";
      a.interval_s = s;
      v.push_back(std::move(a));
    }
    // Evasive red team: one scenario per strike-timing tactic.
    for (u8 t = 0; t < static_cast<u8>(EvasionTactic::kCount); ++t) {
      AttackScenario a;
      a.kind = ScenarioKind::kEvasive;
      a.tactic = static_cast<EvasionTactic>(t);
      a.name = std::string("evasive-") + to_string(a.tactic);
      v.push_back(std::move(a));
    }
    return v;
  }();
  return catalog;
}

std::vector<AttackScenario> scenarios_of(ScenarioKind kind) {
  std::vector<AttackScenario> out;
  for (const auto& a : attack_scenarios()) {
    if (a.kind == kind) out.push_back(a);
  }
  return out;
}

}  // namespace hypertap::attacks
