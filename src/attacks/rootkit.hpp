// Rootkit simulations — the catalog of Table II.
//
// Each named rootkit hides processes using the same class of mechanism as
// its real-world counterpart, operating on the same state a real kernel
// rootkit corrupts:
//
//  * DKOM: unlink the victim's task_struct from the kernel task list in
//    guest memory (FU/HideProc-style). The scheduler still runs the task
//    (it schedules from run queues), but every list walker — in-guest ps,
//    /proc, and structure-walking VMI — loses sight of it.
//  * Syscall hijacking: overwrite entries of the syscall dispatch table in
//    guest memory with the address of a loaded-module wrapper that filters
//    the victim pid out of results (AFX/HideToolz-style). Defeats in-guest
//    tools; VMI still sees the task.
//  * kmem patching: the same data manipulations performed through raw
//    memory writes (/dev/kmem) instead of module code (SucKIT-style).
//
// HRKD detects all of them because context-switch interception is
// independent of both the task list and the syscall table.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "os/kernel.hpp"

namespace hypertap::attacks {

using namespace hvsim;

enum class HideTechnique : u8 { kDkom, kSyscallHijack, kKmem };

const char* to_string(HideTechnique t);

struct RootkitSpec {
  std::string name;
  std::string target_os;  ///< as reported in Table II (flavor label)
  std::vector<HideTechnique> techniques;
};

/// The ten real-world rootkits of Table II.
const std::vector<RootkitSpec>& rootkit_catalog();
const RootkitSpec& rootkit_by_name(const std::string& name);

/// An installed rootkit instance in a guest.
class Rootkit {
 public:
  Rootkit(os::Kernel& kernel, RootkitSpec spec);
  ~Rootkit();

  /// Route the rootkit's stores through the architectural access path of
  /// `vcpu` (kernel-module code executing MOVs) instead of raw memory
  /// patching. EPT write-protection — e.g. the KernelIntegrityGuard —
  /// then traps, and can even veto, the manipulation.
  void set_vcpu(arch::Vcpu* vcpu) { vcpu_ = vcpu; }

  Rootkit(const Rootkit&) = delete;
  Rootkit& operator=(const Rootkit&) = delete;

  /// Hide `pid` using every technique in the spec.
  void hide(u32 pid);

  /// Stop hiding `pid`: drop it from the hijack filter and, for DKOM
  /// specs, splice its task_struct back into the guest task list. This is
  /// the "go loud again" half of a go-quiet evasive rootkit — it toggles
  /// visibility to dodge periodic audits.
  void unhide(u32 pid);

  /// Undo the hijack (DKOM unlinks are not restored — like real rootkits,
  /// unhiding re-links only on demand).
  void uninstall();

  const RootkitSpec& spec() const { return spec_; }
  const std::set<u32>& hidden_pids() const { return hidden_; }

 private:
  void dkom_unlink(u32 pid);
  void dkom_relink(u32 pid);
  void install_hijack();
  u32 rd32(Gpa gpa) const;
  void wr32(Gpa gpa, u32 value);

  os::Kernel& kernel_;
  RootkitSpec spec_;
  arch::Vcpu* vcpu_ = nullptr;
  std::set<u32> hidden_;
  bool hijack_installed_ = false;
  Gva saved_list_entry_ = 0;
  Gva saved_stat_entry_ = 0;
};

}  // namespace hypertap::attacks
