#include "attacks/scenario.hpp"

namespace hypertap::attacks {

namespace {

class IdleSpamWorkload final : public os::Workload {
 public:
  os::Action next(os::TaskCtx&) override {
    return os::ActSyscall{os::SYS_NANOSLEEP, 2'000'000};  // 2 s naps
  }
  std::string name() const override { return "idle"; }
};

/// The attack process: a state machine that calls back into the driver at
/// the escalation and hiding points (those transitions are kernel-state
/// effects of the exploit/module load, not user instructions).
class AttackerWorkload final : public os::Workload {
 public:
  AttackerWorkload(const AttackPlan* plan, AttackTimestamps* times,
                   std::function<void(SimTime)> escalate,
                   std::function<void(SimTime)> hide)
      : plan_(plan), times_(times), escalate_(std::move(escalate)),
        hide_(std::move(hide)) {}

  os::Action next(os::TaskCtx& ctx) override {
    switch (step_++) {
      case 0:  // setup: prepare the exploit
        times_->started = ctx.now;
        return os::ActCompute{ns_to_cycles(plan_->escalate_after)};
      case 1:  // run the exploit (kernel effect applied via callback)
        escalate_(ctx.now);
        // Exposure window: the attacker assembles/loads the rootkit.
        return os::ActCompute{plan_->pre_hide_cycles};
      case 2:  // rootkit active
        hide_(ctx.now);
        if (!plan_->act) { ++step_; return os::ActCompute{10'000}; }
        return os::ActSyscall{os::SYS_OPEN, 99};
      case 3:  // the privileged act: read "sensitive data"
        return os::ActSyscall{os::SYS_READ, 3, 8192};
      case 4:
        times_->acted = ctx.now;
        if (!plan_->exit_after) { step_ = 100; return os::ActCompute{30'000}; }
        times_->exited = ctx.now;
        return os::ActExit{};
      default:  // non-transient attacks linger quietly
        return os::ActSyscall{os::SYS_NANOSLEEP, 500'000};
    }
  }

  std::string name() const override { return "attacker"; }

 private:
  const AttackPlan* plan_;
  AttackTimestamps* times_;
  std::function<void(SimTime)> escalate_;
  std::function<void(SimTime)> hide_;
  int step_ = 0;
};

}  // namespace

std::unique_ptr<os::Workload> make_idle_spam() {
  return std::make_unique<IdleSpamWorkload>();
}

AttackDriver::AttackDriver(os::Kernel& kernel, AttackPlan plan,
                           u32 attacker_uid)
    : kernel_(kernel), plan_(std::move(plan)), uid_(attacker_uid) {}

void AttackDriver::launch() {
  // The attacker's login shell: an unprivileged parent, so the escalated
  // child violates Ninja's magic-group rule.
  if (shell_pid_ == 0) {
    shell_pid_ = kernel_.spawn("bash", uid_, uid_, 1, make_idle_spam());
  }
  for (u32 i = 0; i < plan_.n_spam; ++i) {
    kernel_.spawn("idle" + std::to_string(i), uid_, uid_, shell_pid_,
                  make_idle_spam());
  }
  auto escalate_cb = [this](SimTime t) {
    escalate(kernel_, attacker_pid_, plan_.exploit);
    times_.escalated = t;
  };
  auto hide_cb = [this](SimTime t) {
    if (plan_.rootkit) {
      rootkit_ = std::make_unique<Rootkit>(kernel_, *plan_.rootkit);
      rootkit_->hide(attacker_pid_);
    }
    times_.hidden = t;
  };
  attacker_pid_ = kernel_.spawn(
      "sh", uid_, uid_, shell_pid_,
      std::make_unique<AttackerWorkload>(&plan_, &times_,
                                         std::move(escalate_cb),
                                         std::move(hide_cb)),
      0, plan_.attacker_cpu);
}

}  // namespace hypertap::attacks
