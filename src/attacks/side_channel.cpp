#include "attacks/side_channel.hpp"

#include "os/layout.hpp"
#include "os/syscalls.hpp"

namespace hypertap::attacks {

void SideChannelProbe::on_syscall_data(u8 nr, const std::vector<u32>& data) {
  if (nr == os::SYS_PROC_STAT) stat_ = data;
}

os::Action SideChannelProbe::next(os::TaskCtx& ctx) {
  if (!polling_) {
    polling_ = true;
    stat_.clear();
    return os::ActSyscall{os::SYS_PROC_STAT, cfg_.target_pid};
  }
  polling_ = false;
  if (stat_.size() >= 4) {
    const u32 state = stat_[3];
    if (last_state_ == os::TASK_SLEEPING && state == os::TASK_RUNNING) {
      wakes_.push_back(ctx.now);
    }
    last_state_ = state;
  }
  return os::ActSyscall{os::SYS_NANOSLEEP, cfg_.poll_period_us};
}

std::vector<double> SideChannelProbe::predicted_intervals() const {
  std::vector<double> out;
  for (std::size_t i = 1; i < wakes_.size(); ++i) {
    out.push_back(static_cast<double>(wakes_[i] - wakes_[i - 1]) / 1e9);
  }
  return out;
}

}  // namespace hypertap::attacks
