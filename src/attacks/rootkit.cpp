#include "attacks/rootkit.hpp"

#include <algorithm>
#include <stdexcept>

#include "os/layout.hpp"

namespace hypertap::attacks {

const char* to_string(HideTechnique t) {
  switch (t) {
    case HideTechnique::kDkom: return "DKOM";
    case HideTechnique::kSyscallHijack: return "Hijack system calls";
    case HideTechnique::kKmem: return "kmem";
  }
  return "?";
}

const std::vector<RootkitSpec>& rootkit_catalog() {
  // Table II, verbatim.
  static const std::vector<RootkitSpec> catalog = {
      {"FU", "Win XP, Vista", {HideTechnique::kDkom}},
      {"HideProc", "Win XP, Vista", {HideTechnique::kDkom}},
      {"AFX", "Win XP, Vista", {HideTechnique::kSyscallHijack}},
      {"HideToolz", "Win XP, Vista, 7", {HideTechnique::kSyscallHijack}},
      {"HE4Hook", "Win XP", {HideTechnique::kSyscallHijack}},
      {"BH-Rootkit-NT", "Win XP, Vista", {HideTechnique::kSyscallHijack}},
      {"Ivyl's Rootkit", "Linux >2.6.29", {HideTechnique::kSyscallHijack}},
      {"Enyelkm 1.2", "Linux 2.6",
       {HideTechnique::kKmem, HideTechnique::kSyscallHijack}},
      {"SucKIT", "Linux 2.6",
       {HideTechnique::kKmem, HideTechnique::kDkom}},
      {"PhalanX", "Linux 2.6",
       {HideTechnique::kKmem, HideTechnique::kDkom}},
  };
  return catalog;
}

const RootkitSpec& rootkit_by_name(const std::string& name) {
  for (const auto& s : rootkit_catalog()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown rootkit: " + name);
}

Rootkit::Rootkit(os::Kernel& kernel, RootkitSpec spec)
    : kernel_(kernel), spec_(std::move(spec)) {}

Rootkit::~Rootkit() { uninstall(); }


u32 Rootkit::rd32(Gpa gpa) const {
  return kernel_.machine().mem().rd32(gpa);
}

void Rootkit::wr32(Gpa gpa, u32 value) {
  if (vcpu_ != nullptr) {
    // The module's store instruction: traverses paging + EPT, so a
    // write-protected page raises an EPT_VIOLATION (and the hypervisor
    // may refuse to commit it).
    kernel_.machine().engine().guest_write(
        *vcpu_, os::KERNEL_BASE + gpa, value, 4);
    return;
  }
  kernel_.machine().mem().wr32(gpa, value);
}

bool Rootkit_has(const RootkitSpec& s, HideTechnique t) {
  return std::find(s.techniques.begin(), s.techniques.end(), t) !=
         s.techniques.end();
}

void Rootkit::hide(u32 pid) {
  hidden_.insert(pid);
  if (Rootkit_has(spec_, HideTechnique::kDkom)) dkom_unlink(pid);
  if (Rootkit_has(spec_, HideTechnique::kSyscallHijack) ||
      Rootkit_has(spec_, HideTechnique::kKmem)) {
    // kmem-only hiding uses the same table patch, written through raw
    // memory instead of module-load relocation — identical guest state.
    if (Rootkit_has(spec_, HideTechnique::kSyscallHijack) ||
        !Rootkit_has(spec_, HideTechnique::kDkom)) {
      install_hijack();
    }
  }
}

void Rootkit::unhide(u32 pid) {
  hidden_.erase(pid);  // the hijack wrappers filter on hidden_: no rewrite
  if (Rootkit_has(spec_, HideTechnique::kDkom)) dkom_relink(pid);
}

void Rootkit::dkom_relink(u32 pid) {
  // Splice the victim back in right after the list head — a re-link, not a
  // faithful undo of the unlink position; list walkers only need presence.
  const os::Task* t = kernel_.find_task(pid);
  if (t == nullptr) return;
  const Gpa gpa = t->ts_gpa;
  if (rd32(gpa + os::TS_NEXT) != 0) return;  // still linked (never hidden)
  const Gva head = kernel_.layout().init_task;
  const Gva old_next = rd32(head - os::KERNEL_BASE + os::TS_NEXT);
  wr32(gpa + os::TS_NEXT, old_next);
  wr32(gpa + os::TS_PREV, head);
  wr32(head - os::KERNEL_BASE + os::TS_NEXT, t->ts_gva);
  wr32(old_next - os::KERNEL_BASE + os::TS_PREV, t->ts_gva);
}

void Rootkit::dkom_unlink(u32 pid) {
  // Walk the guest-memory task list like a kernel module would and splice
  // the victim out (Direct Kernel Object Manipulation).
  const Gva head = kernel_.layout().init_task;
  Gva cur = rd32(head - os::KERNEL_BASE + os::TS_NEXT);
  u32 guard = 0;
  while (cur != head && cur != 0 && guard++ < 100'000) {
    const Gpa gpa = cur - os::KERNEL_BASE;
    if (rd32(gpa + os::TS_PID) == pid) {
      const Gva next = rd32(gpa + os::TS_NEXT);
      const Gva prev = rd32(gpa + os::TS_PREV);
      wr32(prev - os::KERNEL_BASE + os::TS_NEXT, next);
      wr32(next - os::KERNEL_BASE + os::TS_PREV, prev);
      // Keep stale pointers in the victim (real DKOM rootkits often do),
      // but zero them here so the kernel's own exit-unlink is a no-op.
      wr32(gpa + os::TS_NEXT, 0);
      wr32(gpa + os::TS_PREV, 0);
      return;
    }
    cur = rd32(gpa + os::TS_NEXT);
  }
}

void Rootkit::install_hijack() {
  if (hijack_installed_) return;
  hijack_installed_ = true;

  const Gpa table_gpa = kernel_.layout().syscall_table - os::KERNEL_BASE;
  saved_list_entry_ = rd32(table_gpa + os::SYS_PROC_LIST * 4u);
  saved_stat_entry_ = rd32(table_gpa + os::SYS_PROC_STAT * 4u);

  // "Load the module": register wrapper entry points in kernel text, then
  // patch the dispatch table in guest memory to point at them.
  const Gva list_wrapper = kernel_.register_handler(
      os::SYS_PROC_LIST,
      [this](os::Task&, const std::array<u32, 3>&, os::SyscallOutcome& out) {
        std::erase_if(out.data,
                      [this](u32 pid) { return hidden_.count(pid) != 0; });
        out.result = static_cast<u32>(out.data.size());
      });
  const Gva stat_wrapper = kernel_.register_handler(
      os::SYS_PROC_STAT,
      [this](os::Task&, const std::array<u32, 3>& args,
             os::SyscallOutcome& out) {
        if (hidden_.count(args[0]) != 0) {
          out.result = 0xFFFF'FFFFu;  // ENOENT: pid "does not exist"
          out.data.clear();
        }
      });
  wr32(table_gpa + os::SYS_PROC_LIST * 4u, list_wrapper);
  wr32(table_gpa + os::SYS_PROC_STAT * 4u, stat_wrapper);
}

void Rootkit::uninstall() {
  if (!hijack_installed_) return;
  const Gpa table_gpa = kernel_.layout().syscall_table - os::KERNEL_BASE;
  wr32(table_gpa + os::SYS_PROC_LIST * 4u, saved_list_entry_);
  wr32(table_gpa + os::SYS_PROC_STAT * 4u, saved_stat_entry_);
  hijack_installed_ = false;
}

}  // namespace hypertap::attacks
