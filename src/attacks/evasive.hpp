// Evasive-guest red team: timing-aware rootkits vs monitor hardening.
//
// The adversary model (hvdetecc-style): an unprivileged-looking guest
// process owns no introspection primitives, only the architectural clock.
// It times its own operations with RDTSC. Because HyperTap charges real
// cycle costs for VM Exits, event forwarding and auditor enqueue, the
// monitor's attention is *guest-visible* as latency — and the PR 7
// degradation ladder (kFull <-> kInvariantOnly duty cycle under load)
// turns that latency into a square wave an attacker can learn. Each
// EvasionTactic is a different way of reading that wave and striking
// (hiding a victim process) inside a predicted blind window.
//
// The countermeasures under test (EvasionCountermeasures):
//  * TSC offsetting  — the hypervisor subtracts each exit round trip's
//    charged cost from the guest-visible counter (Improvisor-style), so
//    probes read bare-metal latencies.
//  * TSC jitter      — seeded low-bit noise on every RDTSC.
//  * randomized audit — the EM sheds by seeded Bernoulli draws instead of
//    a deterministic stride, and keeps a residual trickle of deliveries
//    and timer ticks alive even on the kInvariantOnly rung, so no epoch
//    is a guaranteed-quiet window.
//
// run_evasion_cell() runs one (tactic, countermeasure) cell; the campaign
// sweeps the full matrix deterministically (seed-streamed per cell,
// byte-identical at any thread count).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "attacks/registry.hpp"
#include "os/task.hpp"
#include "util/types.hpp"

namespace hypertap {
namespace journal {
class JournalStore;
}
}  // namespace hypertap

namespace hypertap::attacks {

// ----------------------------- The probe --------------------------------

/// Guest workload implementing all four strike-timing tactics. It probes
/// the monitor through the guest-visible TSC, classifies each sample as
/// loud (audited) or quiet (shed) against a running minimum baseline, and
/// drives the host-side strike callbacks at the tactic's chosen moment.
class EvasiveProbe final : public os::Workload {
 public:
  struct Config {
    EvasionTactic tactic = EvasionTactic::kExitLatencyProbe;
    /// A sample is loud when delta > baseline + threshold (cycles). Must
    /// sit above TSC-jitter noise (2 * jitter) and below the per-event
    /// enqueue cost the monitor charges.
    i64 threshold_cycles = 250;
    /// Compute burn between probe pairs (pacing).
    Cycles gap_cycles = 600'000;  // ~200 us at 3 GHz
    /// Consecutive quiet samples after a loud streak = quiet onset.
    int onset_debounce = 4;
    /// One-shot tactics keep the victim hidden this long after striking.
    SimTime strike_hold = 120'000'000;  // 120 ms
    /// Cadence learner: if no loud sample was ever observed by this time,
    /// assume the VM is unmonitored and strike blind.
    SimTime blind_deadline = 1'000'000'000;  // 1 s
    /// MSR probe: the constant the attacker rebases the TSC to; read-back
    /// minus this constant is the overhead the hypervisor failed to hide.
    u64 msr_rebase = 1'000'000'000;
  };

  /// `on_strike`/`on_unhide` run host-side (rootkit raw-kmem writes).
  EvasiveProbe(Config cfg, std::function<void(SimTime)> on_strike,
               std::function<void(SimTime)> on_unhide);

  os::Action next(os::TaskCtx& ctx) override;
  void on_rdtsc(u64 tsc) override { last_tsc_ = tsc; }
  std::string name() const override { return "evasive-probe"; }

  u64 probes() const { return probes_; }
  u64 loud_samples() const { return loud_samples_; }
  u64 onsets() const { return onsets_; }
  bool struck() const { return struck_; }
  SimTime strike_time() const { return strike_time_; }
  bool used_blind_fallback() const { return blind_fallback_; }

 private:
  enum class Phase : u8 { kT1, kOp, kT2, kClassify };

  void classify(SimTime now);
  void strike(SimTime now);
  void unhide(SimTime now);

  Config cfg_;
  std::function<void(SimTime)> on_strike_;
  std::function<void(SimTime)> on_unhide_;

  Phase phase_ = Phase::kT1;
  u64 last_tsc_ = 0;
  u64 t1_ = 0;

  i64 baseline_ = -1;      ///< min delta observed (cycles)
  int loud_streak_ = 0;
  int quiet_streak_ = 0;
  bool loud_seen_ = false;  ///< >= debounce loud samples observed ever
  bool level_loud_ = false; ///< debounced current level (go-quiet state)

  u64 probes_ = 0;
  u64 loud_samples_ = 0;
  u64 onsets_ = 0;
  SimTime last_onset_ = -1;
  SimTime onset_period_ = 0;   ///< learned quiet-onset period (cadence)
  SimTime planned_strike_ = -1;

  bool struck_ = false;
  bool hidden_ = false;
  bool done_ = false;           ///< one-shot tactic finished its strike
  bool blind_fallback_ = false;
  SimTime strike_time_ = -1;
  SimTime unhide_at_ = -1;
};

// ------------------------- Cells and campaign ---------------------------

struct EvasionCountermeasures {
  bool tsc_offset = false;      ///< hide exit cost from the guest TSC
  Cycles tsc_jitter = 0;        ///< seeded noise per RDTSC (0 = off)
  bool randomized_audit = false;  ///< seeded Bernoulli shed + trickle
};

/// A named countermeasure arm of the sweep.
struct EvasionArm {
  std::string name;
  EvasionCountermeasures cm;
};

/// The canonical sweep arms: none, each countermeasure alone, and the
/// full hardened stack.
const std::vector<EvasionArm>& evasion_arms();

struct EvasionCellConfig {
  EvasionTactic tactic = EvasionTactic::kExitLatencyProbe;
  EvasionCountermeasures cm;
  u64 seed = 2014;
  SimTime duration = 3'000'000'000;     // 3 s
  /// Degradation duty cycle: audit mode toggles kFull <-> kInvariantOnly
  /// every epoch (the overload square wave the attacker learns).
  SimTime epoch = 160'000'000;          // 160 ms
  SimTime hrkd_check_period = 37'000'000;  // co-prime-ish with the epoch
  /// Randomized-audit survival odds: 1-in-N deliveries/ticks survive the
  /// degraded rung (also the kSampled stride when unhardened).
  u32 sample_every = 2;
  /// Per-auditor enqueue cost — the guest-visible loudness signal. Raised
  /// well above the default 60 so the monitor's attention is measurable.
  Cycles enqueue_cycles = 500;
  EvasiveProbe::Config probe;
  /// When set, the cell records its event journal here (seed-corpus
  /// export for the fuzzer).
  journal::JournalStore* journal_store = nullptr;
};

struct EvasionCellResult {
  bool struck = false;
  bool detected = false;   ///< HRKD flagged the hidden victim
  bool evaded = false;     ///< struck && !detected
  SimTime strike_time = -1;
  u64 probes = 0;
  u64 loud_samples = 0;
  u64 onsets = 0;
  bool blind_fallback = false;
  u64 rdtsc_exits = 0;
};

EvasionCellResult run_evasion_cell(const EvasionCellConfig& cfg);

struct EvasionSweepConfig {
  u64 seed = 2014;
  int threads = 1;
  /// Quick mode: only the "none" and "hardened" arms (the CI-gated pair).
  bool quick = false;
};

struct EvasionCellOutcome {
  std::string arm;
  std::string tactic;
  EvasionCellResult result;
};

/// Sweep arms x tactics on a worker pool. Each cell's RNG stream is a
/// pure function of (seed, stable cell index); results are slotted by
/// index and folded serially, so the outcome vector is identical at any
/// thread count.
std::vector<EvasionCellOutcome> run_evasion_campaign(
    const EvasionSweepConfig& cfg);

/// Canonical single-line serialization of a campaign outcome (differential
/// testing across thread counts).
std::string outcome_digest(const std::vector<EvasionCellOutcome>& outcomes);

}  // namespace hypertap::attacks
