// Shared attack-scenario registry.
//
// Benches, tests and the fuzzer seed-corpus exporter used to hard-code
// their own attack lists (bench/table3_side_channel.cpp's interval list,
// ad-hoc rootkit picks). The registry is the single catalog both kinds of
// guest-side adversary scenarios are enumerated from:
//
//  * kSideChannel — the §VIII-B /proc timing probe against O-Ninja, one
//    scenario per configured monitoring interval (Table III rows).
//  * kEvasive — timing-aware evasive rootkits that probe the monitor's
//    own overhead through the guest-visible TSC and strike inside learned
//    audit-degradation windows (the evasion_sweep red team).
#pragma once

#include <string>
#include <vector>

#include "util/types.hpp"

namespace hypertap::attacks {

using namespace hvsim;

enum class ScenarioKind : u8 { kSideChannel = 0, kEvasive };

/// How an evasive rootkit decides WHEN to strike.
enum class EvasionTactic : u8 {
  /// Time syscall round trips with RDTSC pairs; strike when the latency
  /// drops back to the learned bare-metal baseline (audits shed).
  kExitLatencyProbe = 0,
  /// Rebase IA32_TIME_STAMP_COUNTER via WRMSR and time the read-back —
  /// a different channel through the same monitor overhead.
  kMsrProbe,
  /// Learn the degradation ladder's duty-cycle period from repeated
  /// quiet-onsets, then go dark and strike blind at the predicted next
  /// quiet window (no probe traffic during the strike).
  kCadenceLearner,
  /// Persistent go-quiet DKOM: keep the victim hidden during every quiet
  /// epoch and re-link it the instant audits come back.
  kGoQuietDkom,
  kCount,
};

const char* to_string(EvasionTactic t);

struct AttackScenario {
  ScenarioKind kind = ScenarioKind::kSideChannel;
  std::string name;
  /// kSideChannel: O-Ninja monitoring interval under attack (Table III).
  u32 interval_s = 0;
  /// kEvasive: the strike-timing tactic.
  EvasionTactic tactic = EvasionTactic::kExitLatencyProbe;
};

/// The full catalog (side-channel rows first, then the evasive tactics).
const std::vector<AttackScenario>& attack_scenarios();

/// Catalog filtered to one kind, in catalog order.
std::vector<AttackScenario> scenarios_of(ScenarioKind kind);

}  // namespace hypertap::attacks
