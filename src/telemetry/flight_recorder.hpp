// Flight recorder: a bounded ring of recent spans, events, log lines and
// alarms per VM, dumped automatically when something goes wrong (alarm,
// quarantine, recovery escalation) so post-mortem triage starts from the
// moments that mattered instead of a cold log.
//
// Entries are cheap: a sim timestamp, a literal label and an optional
// detail string, pushed into a fixed-capacity circular buffer (old entries
// overwritten). A dump snapshots the ring in chronological order; dumps
// are rate-limited in *simulated* time and capped in number, so an alarm
// storm produces a handful of dumps, not thousands — and stays
// deterministic across identical runs.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/log.hpp"
#include "util/types.hpp"

namespace hvsim::telemetry {

class FlightRecorder {
 public:
  enum class EntryKind : u8 { kEvent, kSpan, kLog, kAlarm, kNote };
  static const char* to_string(EntryKind k);

  struct Entry {
    SimTime t = 0;
    EntryKind kind = EntryKind::kNote;
    const char* label = "";  ///< literal (event kind, span name, level)
    std::string detail;      ///< free-form (alarm text, log line)
    /// Originating Tracer::SpanId for kSpan entries (0 = none): incident
    /// reports join ring entries to trace spans by id, not by fuzzy
    /// timestamp matching.
    u32 span = 0;
  };

  struct Dump {
    SimTime at = 0;
    int vm = 0;
    std::string reason;
    std::vector<Entry> entries;  ///< chronological ring snapshot
  };

  struct Config {
    std::size_t ring_capacity = 256;  ///< per-VM entries retained
    std::size_t max_dumps = 16;
    /// Minimum simulated time between dumps of the same VM.
    SimTime min_dump_gap = 100'000'000;  // 100 ms
  };

  FlightRecorder() : FlightRecorder(Config{}) {}
  explicit FlightRecorder(Config cfg) : cfg_(cfg) {
    // max_dumps is a hard cap, so reserving up front keeps Dump pointers
    // returned by trigger() stable for the recorder's lifetime.
    dumps_.reserve(cfg_.max_dumps);
  }
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Append one entry to `vm`'s ring. `label` must be a literal. `span`
  /// is the originating trace span id, 0 when the entry has none.
  void record(int vm, EntryKind kind, SimTime t, const char* label,
              std::string detail = {}, u32 span = 0);

  /// Snapshot `vm`'s ring as a dump. Returns the dump, or nullptr when
  /// rate-limited / at the dump cap (counted in dumps_suppressed()).
  const Dump* trigger(int vm, SimTime now, std::string reason);

  /// Capture WARN+ (configurable) log lines into `vm`'s ring through the
  /// pluggable log-tap layer, stamping them with simulated time from
  /// `clock`. Returns a handle for detach_log_capture(); the destructor
  /// detaches any remaining captures.
  int attach_log_capture(int vm, std::function<SimTime()> clock,
                         util::LogLevel min_level = util::LogLevel::kWarn);
  void detach_log_capture(int handle);

  const std::vector<Dump>& dumps() const { return dumps_; }
  u64 dumps_suppressed() const { return dumps_suppressed_; }

  /// Chronological snapshot of a VM's ring (what a dump would contain).
  std::vector<Entry> ring(int vm) const;

  /// Human-readable rendering of one dump.
  static std::string format(const Dump& d);

 private:
  struct Ring {
    std::vector<Entry> buf;
    std::size_t next = 0;   ///< slot the next entry lands in
    std::size_t count = 0;  ///< total entries ever recorded
  };

  Config cfg_;
  std::map<int, Ring> rings_;
  std::map<int, SimTime> last_dump_at_;
  std::vector<Dump> dumps_;
  u64 dumps_suppressed_ = 0;
  std::vector<int> log_taps_;
};

}  // namespace hvsim::telemetry
