// Snapshot streamer: periodic delta-encoded metric snapshots, keyed to
// *simulated* time, appended as CRC-framed records in a journal-style
// `.tlmstream` segment format.
//
// Motivation: the Registry alone is snapshot-at-end — a 10-minute soak
// renders one terminal JSON blob and the whole trajectory is gone. The
// streamer turns the registry into a time series: each capture() diffs the
// registry against the previously captured state and appends only what
// changed (new-series definitions, counter deltas, gauge values, histogram
// bucket deltas), so a mostly-idle fleet costs bytes proportional to
// activity, not cardinality.
//
// Format: the journal's 16-byte CRC header framing (journal::FrameSpec)
// with a distinct magic ("HTTS"), one frame type, and a larger payload cap
// — segments carry the `.tlmstream` extension and inherit the journal's
// robustness contract verbatim: bounds-checked never-throws decoding, torn
// tails truncated on open-for-append, malformed mid-segment frames
// quarantined by scanning to the next magic.
//
// Determinism: series are walked in the registry's canonical sorted-key
// order and stream ids are assigned in first-appearance order, so two runs
// that capture identical registry contents at identical sim times produce
// byte-identical streams. The sharded runners capture at their epoch
// barriers from the canonically merged registry — which is what makes the
// stream digest thread-count-invariant (see tests/test_telemetry_stream).
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "journal/journal.hpp"
#include "telemetry/metrics.hpp"
#include "util/types.hpp"

namespace hvsim::telemetry {

/// Materialized histogram state at one stream frame (cumulative, like the
/// live Histogram it mirrors).
struct StreamHistState {
  u64 count = 0;
  u64 sum = 0;
  u64 min = 0;
  u64 max = 0;
  std::array<u64, Histogram::kBuckets> buckets{};

  u64 quantile(double p) const {
    return Histogram::quantile_from(buckets.data(), buckets.size(), count, max,
                                    p);
  }
};

/// Materialized registry state at one stream frame: what a decoder holds
/// after applying every delta up to (and including) that frame. Keys are
/// the registry's canonical series keys.
struct StreamState {
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, StreamHistState> hists;
  /// Sim time of the last frame that changed each series (definition
  /// counts as a change) — the staleness input for absence SLO rules.
  std::map<std::string, SimTime> changed_at;
};

/// Framing parameters of the `.tlmstream` format (shared CRC header layout
/// with the journal, distinct magic/extension/payload cap).
const hypertap::journal::FrameSpec& stream_frame_spec();
inline constexpr const char* kStreamExtension = ".tlmstream";

/// Writer: delta-encode successive registry snapshots into a segment store.
class SnapshotStreamer {
 public:
  struct Options {
    /// Rotate to a fresh segment once the active one reaches this size.
    std::size_t segment_bytes = 1u << 20;
  };

  /// Opens the store for append: repairs a torn tail off the last segment
  /// (same contract as JournalWriter), then replays the surviving frames
  /// to rebuild the id table and materialized state, so appending resumes
  /// exactly where the intact prefix left off.
  SnapshotStreamer(hypertap::journal::JournalStore& store, Options opts);
  explicit SnapshotStreamer(hypertap::journal::JournalStore& store)
      : SnapshotStreamer(store, Options{}) {}

  SnapshotStreamer(const SnapshotStreamer&) = delete;
  SnapshotStreamer& operator=(const SnapshotStreamer&) = delete;

  /// Diff `reg` against the last captured state and append one frame at
  /// sim time `t` (monotonically non-decreasing across captures). A frame
  /// is appended even when nothing changed — an empty frame is the
  /// heartbeat that lets absence rules distinguish "quiet" from "dead".
  void capture(SimTime t, const Registry& reg);

  /// Notified after every capture with the frame time and the materialized
  /// state — the SloEngine's live-evaluation hook.
  void set_observer(std::function<void(SimTime, const StreamState&)> fn) {
    observer_ = std::move(fn);
  }

  u64 frames() const { return frames_; }
  u64 bytes_written() const { return bytes_written_; }
  SimTime last_capture_at() const { return last_at_; }
  const StreamState& state() const { return state_; }
  const hypertap::journal::OpenStats& open_stats() const {
    return open_stats_;
  }

 private:
  void append_frame(const std::vector<u8>& payload);

  hypertap::journal::JournalStore& store_;
  Options opts_;
  std::string active_;  ///< segment being appended
  std::size_t active_bytes_ = 0;
  u64 seg_index_ = 0;
  u64 frames_ = 0;
  u64 bytes_written_ = 0;
  SimTime last_at_ = -1;
  hypertap::journal::OpenStats open_stats_;

  /// Stream ids, assigned in first-appearance order (canonical walk order
  /// makes the assignment deterministic).
  u32 next_id_ = 1;
  std::map<std::string, u32> counter_ids_;
  std::map<std::string, u32> gauge_ids_;
  std::map<std::string, u32> hist_ids_;

  StreamState state_;  ///< last captured values (the delta baseline)
  std::function<void(SimTime, const StreamState&)> observer_;
};

/// Reader: sequentially materialize the state at each frame. Malformed
/// frames are quarantined, a torn tail on the last segment is dropped —
/// reading never throws on arbitrary bytes.
class SnapshotStreamReader {
 public:
  explicit SnapshotStreamReader(const hypertap::journal::JournalStore& store);

  /// Advance to the next intact frame; false at end-of-stream. After a
  /// true return, time()/index()/state() describe that frame.
  bool next();

  SimTime time() const { return time_; }
  u64 index() const { return index_; }
  const StreamState& state() const { return state_; }

  u64 frames_read() const { return frames_read_; }
  u64 quarantined() const { return quarantined_; }
  bool torn_tail() const { return torn_tail_; }

 private:
  bool load_next_segment();

  const hypertap::journal::JournalStore& store_;
  std::vector<std::string> names_;
  std::size_t seg_i_ = 0;
  std::vector<u8> buf_;
  std::size_t off_ = 0;
  bool last_segment_ = false;

  SimTime time_ = -1;
  u64 index_ = 0;
  StreamState state_;
  std::vector<std::pair<u8, std::string>> defs_;  ///< id-1 -> (kind, key)

  u64 frames_read_ = 0;
  u64 quarantined_ = 0;
  bool torn_tail_ = false;
};

}  // namespace hvsim::telemetry
