#include "telemetry/trace.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"

namespace hvsim::telemetry {

Tracer::SpanId Tracer::begin(int pid, int tid, const char* name,
                             const char* cat, SimTime ts, std::string arg) {
  if (spans_.size() >= cfg_.max_spans) {
    ++dropped_;
    return kNone;
  }
  Span s;
  s.id = static_cast<SpanId>(spans_.size() + 1);
  auto& st = stack(pid, tid);
  s.parent = st.empty() ? kNone : st.back();
  s.pid = pid;
  s.tid = tid;
  s.name = name;
  s.cat = cat;
  s.arg = std::move(arg);
  s.begin = ts;
  st.push_back(s.id);
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void Tracer::end(SpanId id, SimTime ts) {
  if (id == kNone || id > spans_.size()) return;
  Span& s = spans_[id - 1];
  if (s.end >= 0) return;  // already closed
  s.end = ts;
  // Pop the track's stack down to (and including) this span. Defensive
  // against out-of-order ends: anything opened above a span that closes
  // is closed with it.
  auto& st = stack(s.pid, s.tid);
  while (!st.empty()) {
    const SpanId top = st.back();
    st.pop_back();
    if (top == id) break;
    Span& orphan = spans_[top - 1];
    if (orphan.end < 0) orphan.end = ts;
  }
  if (flight_ != nullptr) {
    flight_->record(s.pid, FlightRecorder::EntryKind::kSpan, s.begin, s.name,
                    s.arg, s.id);
  }
}

void Tracer::instant(int pid, int tid, const char* name, const char* cat,
                     SimTime ts, std::string arg) {
  if (spans_.size() >= cfg_.max_spans) {
    ++dropped_;
    return;
  }
  Span s;
  s.id = static_cast<SpanId>(spans_.size() + 1);
  auto& st = stack(pid, tid);
  s.parent = st.empty() ? kNone : st.back();
  s.pid = pid;
  s.tid = tid;
  s.name = name;
  s.cat = cat;
  s.arg = std::move(arg);
  s.begin = ts;
  s.end = ts;
  s.instant = true;
  spans_.push_back(std::move(s));
}

void Tracer::clear() {
  spans_.clear();
  stacks_.clear();
  dropped_ = 0;
}

const Tracer::Span* Tracer::find(const std::string& name) const {
  for (const Span& s : spans_) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

const Tracer::Span* Tracer::find(const std::string& name,
                                 const std::string& arg) const {
  for (const Span& s : spans_) {
    if (name == s.name && arg == s.arg) return &s;
  }
  return nullptr;
}

namespace {

std::string track_name(int tid) {
  if (tid == kMonitorTrack) return "monitor";
  if (tid == kRecoveryTrack) return "recovery";
  return "vcpu" + std::to_string(tid);
}

/// trace_event timestamps are microseconds; sim time is ns. Emit with
/// fractional precision so sub-microsecond spans stay distinguishable.
std::string us(SimTime ns) {
  std::ostringstream os;
  os << json_num(static_cast<double>(ns) / 1000.0);
  return os.str();
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& obj) {
    if (!first) os << ",\n";
    first = false;
    os << obj;
  };

  // Metadata: name processes (VMs) and threads (tracks) so Perfetto's
  // timeline is labelled. Collect the distinct (pid, tid) pairs first.
  std::set<int> pids;
  std::set<std::pair<int, int>> tracks;
  for (const Span& s : spans_) {
    pids.insert(s.pid);
    tracks.insert({s.pid, s.tid});
  }
  for (const int pid : pids) {
    emit("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":" +
         json_str("vm" + std::to_string(pid)) + "}}");
  }
  for (const auto& [pid, tid] : tracks) {
    emit("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
         ",\"args\":{\"name\":" + json_str(track_name(tid)) + "}}");
  }

  for (const Span& s : spans_) {
    std::ostringstream ev;
    if (s.instant) {
      ev << "{\"ph\":\"i\",\"s\":\"t\"";
    } else {
      ev << "{\"ph\":\"X\"";
      const SimTime end = s.end >= 0 ? s.end : s.begin;
      ev << ",\"dur\":" << us(end - s.begin);
    }
    ev << ",\"name\":" << json_str(s.name) << ",\"cat\":" << json_str(s.cat)
       << ",\"pid\":" << s.pid << ",\"tid\":" << s.tid
       << ",\"ts\":" << us(s.begin) << ",\"args\":{\"id\":" << s.id
       << ",\"parent\":" << s.parent;
    if (!s.arg.empty()) ev << ",\"detail\":" << json_str(s.arg);
    ev << "}}";
    emit(ev.str());
  }
  os << "]}\n";
}

std::string Tracer::chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

}  // namespace hvsim::telemetry
