#include "telemetry/flight_recorder.hpp"

#include <sstream>
#include <utility>

namespace hvsim::telemetry {

const char* FlightRecorder::to_string(EntryKind k) {
  switch (k) {
    case EntryKind::kEvent: return "event";
    case EntryKind::kSpan: return "span";
    case EntryKind::kLog: return "log";
    case EntryKind::kAlarm: return "alarm";
    case EntryKind::kNote: return "note";
  }
  return "?";
}

FlightRecorder::~FlightRecorder() {
  for (const int handle : log_taps_) util::remove_log_tap(handle);
}

void FlightRecorder::record(int vm, EntryKind kind, SimTime t,
                            const char* label, std::string detail, u32 span) {
  Ring& ring = rings_[vm];
  if (ring.buf.empty()) ring.buf.resize(cfg_.ring_capacity);
  ring.buf[ring.next] = Entry{t, kind, label, std::move(detail), span};
  ring.next = (ring.next + 1) % cfg_.ring_capacity;
  ++ring.count;
}

std::vector<FlightRecorder::Entry> FlightRecorder::ring(int vm) const {
  std::vector<Entry> out;
  const auto it = rings_.find(vm);
  if (it == rings_.end()) return out;
  const Ring& r = it->second;
  const std::size_t n = std::min(r.count, cfg_.ring_capacity);
  out.reserve(n);
  // Oldest entry is at `next` once the ring has wrapped, else at 0.
  const std::size_t start = r.count > cfg_.ring_capacity ? r.next : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(r.buf[(start + i) % cfg_.ring_capacity]);
  }
  return out;
}

const FlightRecorder::Dump* FlightRecorder::trigger(int vm, SimTime now,
                                                    std::string reason) {
  if (dumps_.size() >= cfg_.max_dumps) {
    ++dumps_suppressed_;
    return nullptr;
  }
  const auto last = last_dump_at_.find(vm);
  if (last != last_dump_at_.end() && now - last->second < cfg_.min_dump_gap) {
    ++dumps_suppressed_;
    return nullptr;
  }
  last_dump_at_[vm] = now;
  Dump d;
  d.at = now;
  d.vm = vm;
  d.reason = std::move(reason);
  d.entries = ring(vm);
  dumps_.push_back(std::move(d));
  return &dumps_.back();
}

int FlightRecorder::attach_log_capture(int vm, std::function<SimTime()> clock,
                                       util::LogLevel min_level) {
  const int handle = util::add_log_tap(
      [this, vm, clock = std::move(clock), min_level](util::LogLevel lvl,
                                                      const std::string& msg) {
        if (lvl < min_level) return;
        record(vm, EntryKind::kLog, clock ? clock() : 0,
               util::level_name(lvl), msg);
      });
  log_taps_.push_back(handle);
  return handle;
}

void FlightRecorder::detach_log_capture(int handle) {
  util::remove_log_tap(handle);
  std::erase(log_taps_, handle);
}

std::string FlightRecorder::format(const Dump& d) {
  std::ostringstream os;
  os << "=== flight dump vm=" << d.vm << " t=" << d.at << "ns reason=\""
     << d.reason << "\" (" << d.entries.size() << " entries) ===\n";
  for (const Entry& e : d.entries) {
    os << "  " << e.t << "ns [" << to_string(e.kind) << "] " << e.label;
    if (e.span != 0) os << " #" << e.span;
    if (!e.detail.empty()) os << ": " << e.detail;
    os << "\n";
  }
  return os.str();
}

}  // namespace hvsim::telemetry
