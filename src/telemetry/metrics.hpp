// Metrics registry: lock-cheap counters, gauges and log-bucketed
// histograms, registered by name + labels, with Prometheus-style text and
// JSON exposition snapshots.
//
// Design constraints, in order:
//  1. The hot path (the VM-exit pipeline) must pay at most one relaxed
//     atomic add per touched series. Series are resolved to raw pointers
//     ONCE at wiring time (set_telemetry) and cached by the instrumented
//     component; the name/label maps are never consulted per event.
//  2. Snapshots must be deterministic: identical sim runs produce
//     byte-identical exposition text. All series values are integers (or
//     sim-time-derived), iteration order is the sorted series key, and
//     histogram buckets are fixed powers of two.
//  3. Registration is thread-safe (the async auditing channel registers
//     from the host thread, increments from its consumer thread); counters
//     use relaxed atomics so cross-thread increments stay cheap.
//
// Everything observable is driven by *simulated* time and event counts —
// never wall clock — which is what keeps snapshots reproducible.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace hvsim::telemetry {

/// Label set, e.g. {{"auditor","goshd"},{"vm","0"}}. Keys are sorted on
/// registration so the same set in any order names the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(u64 d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  u64 value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Log-bucketed histogram over unsigned integer samples (cycles, ns,
/// bytes, queue depths). Bucket i holds samples with value <= le(i):
///   le(0) = 0, le(i) = 2^(i-1) for 1 <= i < kOverflow, le(kOverflow) = inf
/// Powers of two keep observe() at one bit_width plus one relaxed add.
class Histogram {
 public:
  /// 0, 1, 2, 4, ..., 2^41 (~36 simulated minutes in ns), then overflow.
  static constexpr std::size_t kBuckets = 44;
  static constexpr std::size_t kOverflow = kBuckets - 1;

  static std::size_t bucket_index(u64 v) {
    if (v == 0) return 0;
    const std::size_t i = 1 + static_cast<std::size_t>(std::bit_width(v - 1));
    return i < kOverflow ? i : kOverflow;
  }
  /// Upper bound of bucket i (inclusive); kOverflow has no finite bound.
  static u64 bucket_le(std::size_t i) {
    return i == 0 ? 0 : (1ull << (i - 1));
  }

  void observe(u64 v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  u64 count() const { return count_.load(std::memory_order_relaxed); }
  u64 sum() const { return sum_.load(std::memory_order_relaxed); }
  u64 min() const {
    const u64 m = min_.load(std::memory_order_relaxed);
    return count() == 0 ? 0 : m;
  }
  u64 max() const { return max_.load(std::memory_order_relaxed); }
  u64 bucket_count(std::size_t i) const {
    return buckets_.at(i).load(std::memory_order_relaxed);
  }

  /// Fold another histogram's samples in (bucket-wise sum, min/max
  /// combine). Used by Registry::merge_from; `src` must be quiescent.
  void merge_from(const Histogram& src);

  /// p-quantile (0 < p <= 1) at the histogram's native resolution: the
  /// inclusive upper bound of the bucket holding the p-th sample. Samples
  /// that landed in the overflow bucket report max() (the largest value
  /// actually seen), so p100 is always a real sample bound. Returns 0 on
  /// an empty histogram.
  u64 quantile(double p) const;

  /// Same walk over externally-held bucket counts (a decoded stream frame
  /// or a merged snapshot): `bucket_counts[0..n)` mirror bucket_count(i),
  /// `count` the total and `max_seen` the largest observed sample.
  static u64 quantile_from(const u64* bucket_counts, std::size_t n, u64 count,
                           u64 max_seen, double p);

 private:
  void update_min(u64 v) {
    u64 cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(u64 v) {
    u64 cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<u64>, kBuckets> buckets_{};
  std::atomic<u64> count_{0};
  std::atomic<u64> sum_{0};
  std::atomic<u64> min_{~0ull};
  std::atomic<u64> max_{0};
};

/// The registry: owns every series, hands out stable raw pointers.
class Registry {
 public:
  struct Config {
    /// Cardinality guard: total series across all types. Registrations
    /// beyond the cap collapse into a per-name overflow series (labelled
    /// overflow="true") instead of growing without bound.
    std::size_t max_series = 4096;
  };

  Registry() : Registry(Config{}) {}
  explicit Registry(Config cfg) : cfg_(cfg) {}

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(const std::string& name, Labels labels = {});
  Gauge* gauge(const std::string& name, Labels labels = {});
  Histogram* histogram(const std::string& name, Labels labels = {});

  /// Lookup without creating (tests / exposition helpers). nullptr when
  /// the series does not exist.
  const Counter* find_counter(const std::string& name,
                              Labels labels = {}) const;
  const Gauge* find_gauge(const std::string& name, Labels labels = {}) const;
  const Histogram* find_histogram(const std::string& name,
                                  Labels labels = {}) const;

  /// Convenience: value of a counter series, 0 when absent.
  u64 counter_value(const std::string& name, Labels labels = {}) const;

  std::size_t series_count() const;
  u64 dropped_series() const {
    return dropped_series_.load(std::memory_order_relaxed);
  }

  /// Prometheus-style text exposition. Deterministic: series sorted by
  /// full key, histogram buckets cumulative with le="..." labels.
  std::string prometheus_text() const;

  /// JSON snapshot: {"counters":{key:val},"gauges":{...},
  /// "histograms":{key:{count,sum,min,max,p50,p99,buckets:{le:count}}}}.
  std::string json() const;

  /// Visit every series of one kind in sorted-key order — the registry's
  /// canonical (deterministic) iteration, used by the snapshot streamer.
  /// The registry lock is held for the whole walk; visitors must not
  /// re-enter the registry.
  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  /// The canonical series key: name{k1="v1",k2="v2"} with sorted labels.
  static std::string series_key(const std::string& name, Labels labels);

  /// Fold every series of `src` into this registry: counters and
  /// histograms sum, gauges accumulate via add() (shard-partitioned gauges
  /// like ht_host_vms then read as fleet totals). Series are matched by
  /// their canonical key, so merging N per-shard registries in a fixed
  /// order into a fresh registry is deterministic — the basis of the
  /// sharded runners' byte-identical merged snapshots. The cardinality
  /// guard applies as usual (overflowing series collapse per family).
  /// `src` must be quiescent (its shard joined); src != this.
  void merge_from(const Registry& src);

 private:
  template <typename T>
  T* get_series(std::map<std::string, std::unique_ptr<T>>& m,
                const std::string& name, Labels labels);
  template <typename T>
  T* series_by_key(std::map<std::string, std::unique_ptr<T>>& m,
                   const std::string& key);

  Config cfg_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::atomic<u64> dropped_series_{0};
};

}  // namespace hvsim::telemetry
