// Incident forensics: when a VM trips an alarm or the recovery ladder
// escalates, stitch every observability surface we have — the trace
// spans of the detecting pipeline pass, the flight-recorder ring, the
// journal suffix since the last checkpoint, and the remediation ledger —
// into one deterministic post-mortem document, `incident_<vm>_<seq>.json`.
//
// The centerpiece is the causal chain: the alarm names its auditor, the
// auditor's last completed "audit" span before the alarm names (via
// parent links) the "forward" and "exit" spans that carried the guest
// event in, so detection latency decomposes hop by hop:
//
//   guest write → [exit] → [forward] → [audit] → (analysis) → alarm
//
// with each hop's simulated begin/end/latency attributed exactly — no
// fuzzy timestamp matching, the tracer's explicit parent ids are the
// ground truth. Flight-ring span entries join the same chain by SpanId.
//
// Determinism: everything is keyed to simulated time and produced by the
// single-threaded recovery/alarm path, so identical seeds yield
// byte-identical incident files at any worker-thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/auditor.hpp"
#include "recovery/supervisable.hpp"
#include "telemetry/telemetry.hpp"
#include "util/types.hpp"

namespace hypertap::journal {
class JournalWriter;
}

namespace hvsim::telemetry {

class IncidentReporter {
 public:
  struct Options {
    /// Directory incident files land in; "" keeps reports in memory only.
    std::string dir;
    /// Hard cap on reports per reporter (alarm storms must not fill the
    /// disk); excess is counted in suppressed().
    std::size_t max_incidents = 64;
    /// Minimum simulated time between *alarm-triggered* reports. Direct
    /// report() calls (recovery escalations) are never gap-limited — the
    /// ladder's own backoff already paces them.
    SimTime min_gap = 0;
  };

  /// One attributed stage of the detection pipeline.
  struct Hop {
    const char* stage = "";  ///< "exit" / "forward" / "audit" / "analysis"
    SimTime begin = -1;
    SimTime end = -1;
    SimTime latency = 0;
    Tracer::SpanId span = Tracer::kNone;  ///< 0 for the analysis gap
  };

  struct Incident {
    int vm = 0;
    u64 seq = 0;          ///< per-reporter, dense from 0
    SimTime at = 0;       ///< report time (alarm or escalation time)
    std::string reason;   ///< "alarm:<type>" or "escalation:<remedy>"
    hypertap::Alarm trigger;
    /// Causal chain, guest event first. Empty when the trigger has no
    /// pipeline provenance (e.g. SLO breaches raised off-pipeline).
    std::vector<Hop> chain;
    SimTime guest_event_at = -1;    ///< exit-span begin, -1 when unchained
    SimTime detection_latency = -1; ///< alarm time − guest_event_at
    u64 checkpoint_mark = 0;    ///< journal records at last checkpoint
    u64 journal_records = 0;    ///< journal records now
    u64 journal_suffix = 0;     ///< records since the checkpoint mark
    std::vector<hypertap::recovery::RemediationRecord> ledger;
    std::vector<FlightRecorder::Entry> flight;  ///< ring snapshot at report
    std::string file;  ///< path written, "" when Options::dir is unset
  };

  IncidentReporter() = default;
  explicit IncidentReporter(Options opt) : opt_(std::move(opt)) {}

  IncidentReporter(const IncidentReporter&) = delete;
  IncidentReporter& operator=(const IncidentReporter&) = delete;

  /// Span/flight source plus the VM id stamped into reports and used to
  /// select this VM's spans and ring.
  void set_telemetry(Telemetry* t, int vm_id);

  /// Journal high-water-mark source for the suffix accounting.
  void set_journal(hypertap::journal::JournalWriter* w) { journal_ = w; }

  /// Journal mark of the newest retained checkpoint (the suffix base).
  void set_checkpoint_mark(std::function<u64()> fn) {
    checkpoint_mark_ = std::move(fn);
  }

  /// Remediation-ledger source (RecoveryManager::history copy).
  void set_ledger(
      std::function<std::vector<hypertap::recovery::RemediationRecord>()> fn) {
    ledger_ = std::move(fn);
  }

  /// Subscribe to the sink: every trigger-class alarm (the recovery
  /// ladder's trigger set plus ht_slo_breach and vm-failed) produces a
  /// report, subject to Options pacing.
  void attach(hypertap::AlarmSink& sink);

  /// Build (and, when Options::dir is set, write) one report. Returns the
  /// stored incident, or nullptr when capped. `reason` should say which
  /// path asked: "alarm:<type>" or "escalation:<remedy>".
  const Incident* report(SimTime now, const hypertap::Alarm& trigger,
                         std::string reason);

  const std::vector<Incident>& incidents() const { return incidents_; }
  u64 suppressed() const { return suppressed_; }

  /// Does this alarm type open an incident when seen on the sink?
  static bool is_incident_alarm(const std::string& type);

  /// Deterministic JSON rendering (stable field order, json.hpp number
  /// formatting) — exactly what the file contains.
  static std::string render_json(const Incident& inc);

 private:
  void build_chain(Incident* inc) const;

  Options opt_;
  Telemetry* telemetry_ = nullptr;
  int vm_id_ = 0;
  hypertap::journal::JournalWriter* journal_ = nullptr;
  std::function<u64()> checkpoint_mark_;
  std::function<std::vector<hypertap::recovery::RemediationRecord>()> ledger_;

  std::vector<Incident> incidents_;
  u64 suppressed_ = 0;
  SimTime last_alarm_report_at_ = -1;

  Counter* incidents_counter_ = nullptr;
  Counter* suppressed_counter_ = nullptr;
};

}  // namespace hvsim::telemetry
