// Span tracer for the exit-path pipeline: VM Exit decode -> event forward
// -> multiplexer fan-out -> per-auditor audit -> alarm -> recovery rung.
//
// Spans are keyed to *simulated* time and written as Chrome trace_event /
// Perfetto-compatible JSON ("X" complete events plus "i" instants), so a
// run opens directly in chrome://tracing or ui.perfetto.dev. The pid field
// carries the VM index, the tid field the track (vCPU id for guest-synchronous
// work, dedicated monitor/recovery tracks for host-side work), which makes
// the per-VM pipeline render as nested slices per vCPU.
//
// Parent/child structure is explicit: the tracer keeps an open-span stack
// per (pid, tid) track and records each span's parent id, so tests (and
// post-processing) can assert the exit -> audit -> alarm chain without
// re-deriving containment from timestamps.
//
// The tracer is deliberately single-threaded (the deterministic sim loop);
// the threaded async channel records counters only. Span storage is
// bounded: past the cap new spans are dropped and counted, never resized.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace hvsim::telemetry {

class FlightRecorder;

/// Host-side tracks (tid values) that are not vCPUs.
inline constexpr int kMonitorTrack = 100;
inline constexpr int kRecoveryTrack = 101;

class Tracer {
 public:
  using SpanId = u32;
  static constexpr SpanId kNone = 0;

  struct Config {
    /// Hard cap on recorded spans+instants; excess is dropped and counted.
    std::size_t max_spans = 250'000;
  };

  struct Span {
    SpanId id = kNone;
    SpanId parent = kNone;
    int pid = 0;  ///< VM index
    int tid = 0;  ///< vCPU id or k*Track
    const char* name = "";
    const char* cat = "";
    std::string arg;       ///< optional detail (auditor name, alarm type)
    SimTime begin = 0;
    SimTime end = -1;      ///< -1 while open
    bool instant = false;
  };

  Tracer() : Tracer(Config{}) {}
  explicit Tracer(Config cfg) : cfg_(cfg) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Open a span; returns kNone when at capacity (end(kNone) is a no-op).
  /// `name` and `cat` must be string literals (or otherwise outlive the
  /// tracer) — the hot path stores the pointer, not a copy.
  SpanId begin(int pid, int tid, const char* name, const char* cat,
               SimTime ts, std::string arg = {});

  void end(SpanId id, SimTime ts);

  /// Zero-duration marker, parented under the track's open span.
  void instant(int pid, int tid, const char* name, const char* cat,
               SimTime ts, std::string arg = {});

  /// Mirror completed spans into a flight recorder ring (bounded, so the
  /// cost is one ring slot per span; pass nullptr to stop).
  void set_flight(FlightRecorder* flight) { flight_ = flight; }

  const std::vector<Span>& spans() const { return spans_; }
  u64 dropped() const { return dropped_; }
  void clear();

  /// First recorded span (or instant) with this name; nullptr if absent.
  const Span* find(const std::string& name) const;
  /// First span with this name whose arg matches; nullptr if absent.
  const Span* find(const std::string& name, const std::string& arg) const;
  const Span* by_id(SpanId id) const {
    return id == kNone || id > spans_.size() ? nullptr : &spans_[id - 1];
  }

  /// Chrome trace_event JSON (object form with "traceEvents"), including
  /// process/thread metadata so Perfetto labels VMs and tracks.
  void write_chrome_json(std::ostream& os) const;
  std::string chrome_json() const;

 private:
  std::vector<SpanId>& stack(int pid, int tid) {
    return stacks_[(static_cast<u64>(static_cast<u32>(pid)) << 32) |
                   static_cast<u32>(tid)];
  }

  Config cfg_;
  std::vector<Span> spans_;
  std::map<u64, std::vector<SpanId>> stacks_;
  u64 dropped_ = 0;
  FlightRecorder* flight_ = nullptr;
};

}  // namespace hvsim::telemetry
