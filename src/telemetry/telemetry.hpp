// The telemetry bundle: one Registry + Tracer + FlightRecorder wired
// together, plus the HT_* macro layer every instrumented component uses.
//
// Instrumentation contract:
//  - Components hold cached raw pointers (Counter*, Gauge*, Histogram*,
//    Tracer*, FlightRecorder*) resolved once in their set_telemetry().
//    All pointers default to nullptr; the macros below null-check, so an
//    unwired component pays one predictable branch per site.
//  - When the build is configured with -DHYPERTAP_TELEMETRY=OFF the
//    HYPERTAP_TELEMETRY_DISABLED define makes every macro compile to
//    nothing (argument expressions are NOT evaluated), which is what the
//    bench/telemetry_overhead harness verifies.
//  - Telemetry charges zero simulated cycles: observing a run never
//    changes it, so identical seeds yield byte-identical snapshots with
//    telemetry on, off, or compiled out.
#pragma once

#include "telemetry/flight_recorder.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace hvsim::telemetry {

struct Telemetry {
  Telemetry() { tracer.set_flight(&flight); }
  Telemetry(Registry::Config rc, Tracer::Config tc, FlightRecorder::Config fc)
      : registry(rc), tracer(tc), flight(fc) {
    tracer.set_flight(&flight);
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  Registry registry;
  Tracer tracer;
  FlightRecorder flight;
};

}  // namespace hvsim::telemetry

#ifndef HYPERTAP_TELEMETRY_DISABLED

/// `c` is a cached Counter* (may be nullptr when unwired).
#define HT_COUNT(c)                       \
  do {                                    \
    if ((c) != nullptr) (c)->inc();       \
  } while (0)
#define HT_COUNT_N(c, n)                  \
  do {                                    \
    if ((c) != nullptr) (c)->inc(n);      \
  } while (0)
/// `g` is a cached Gauge*.
#define HT_GAUGE_SET(g, v)                \
  do {                                    \
    if ((g) != nullptr) (g)->set(v);      \
  } while (0)
#define HT_GAUGE_ADD(g, v)                \
  do {                                    \
    if ((g) != nullptr) (g)->add(v);      \
  } while (0)
/// `h` is a cached Histogram*.
#define HT_OBSERVE(h, v)                  \
  do {                                    \
    if ((h) != nullptr) (h)->observe(v);  \
  } while (0)

/// `t` is a cached Tracer*. Evaluates to a SpanId (kNone when unwired);
/// the argument expressions are only evaluated when the tracer is wired.
#define HT_SPAN_BEGIN(t, pid, tid, name, cat, ts)                           \
  ((t) != nullptr ? (t)->begin((pid), (tid), (name), (cat), (ts))           \
                  : ::hvsim::telemetry::Tracer::kNone)
#define HT_SPAN_BEGIN_ARG(t, pid, tid, name, cat, ts, arg)                  \
  ((t) != nullptr ? (t)->begin((pid), (tid), (name), (cat), (ts), (arg))    \
                  : ::hvsim::telemetry::Tracer::kNone)
#define HT_SPAN_END(t, id, ts)            \
  do {                                    \
    if ((t) != nullptr) (t)->end((id), (ts)); \
  } while (0)
#define HT_INSTANT(t, pid, tid, name, cat, ts, arg)                         \
  do {                                                                      \
    if ((t) != nullptr) (t)->instant((pid), (tid), (name), (cat), (ts),     \
                                     (arg));                                \
  } while (0)

/// `f` is a cached FlightRecorder*.
#define HT_FLIGHT(f, vm, kind, ts, label, detail)                           \
  do {                                                                      \
    if ((f) != nullptr)                                                     \
      (f)->record((vm), ::hvsim::telemetry::FlightRecorder::EntryKind::kind, \
                  (ts), (label), (detail));                                 \
  } while (0)

#else  // HYPERTAP_TELEMETRY_DISABLED: everything compiles to nothing.

#define HT_COUNT(c) \
  do {              \
  } while (0)
#define HT_COUNT_N(c, n) \
  do {                   \
  } while (0)
#define HT_GAUGE_SET(g, v) \
  do {                     \
  } while (0)
#define HT_GAUGE_ADD(g, v) \
  do {                     \
  } while (0)
#define HT_OBSERVE(h, v) \
  do {                   \
  } while (0)
#define HT_SPAN_BEGIN(t, pid, tid, name, cat, ts) \
  (::hvsim::telemetry::Tracer::kNone)
#define HT_SPAN_BEGIN_ARG(t, pid, tid, name, cat, ts, arg) \
  (::hvsim::telemetry::Tracer::kNone)
#define HT_SPAN_END(t, id, ts) \
  do {                         \
    (void)(id); /* silence unused-variable for the span id */ \
  } while (0)
#define HT_INSTANT(t, pid, tid, name, cat, ts, arg) \
  do {                                              \
  } while (0)
#define HT_FLIGHT(f, vm, kind, ts, label, detail) \
  do {                                            \
  } while (0)

#endif  // HYPERTAP_TELEMETRY_DISABLED
