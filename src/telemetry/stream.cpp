#include "telemetry/stream.hpp"

#include <bit>
#include <utility>

namespace hvsim::telemetry {

namespace journal = hypertap::journal;
using namespace journal::wire;

// ---------------------------------------------------------------------------
// Format
// ---------------------------------------------------------------------------
//
// One frame type. Payload layout (little-endian, wire codec):
//
//   t:i64 index:u64
//   ndefs:u32    [ kind:u8 id:u32 key:str ]      (kind: 0 ctr, 1 gauge, 2 hist)
//   nctrs:u32    [ id:u32 delta:u64 ]            (wrapping add)
//   ngauges:u32  [ id:u32 value_bits:u64 ]       (absolute, IEEE-754 bits)
//   nhists:u32   [ id:u32 dcount:u64 dsum:u64 min:u64 max:u64
//                  nbuckets:u16 [ bucket:u8 dcount:u64 ] ]
//
// Ids are assigned in first-appearance order and are dense (id k is the
// k-th definition ever emitted) — a decoder rejects any frame that breaks
// that invariant, so a spliced-together stream can't alias series.

namespace {

constexpr u8 kFrameType = 1;
constexpr u8 kKindCounter = 0;
constexpr u8 kKindGauge = 1;
constexpr u8 kKindHist = 2;

/// Decoded-but-unapplied frame: parse fully, validate, then apply, so a
/// frame that goes bad halfway never half-mutates the materialized state.
struct FrameDeltas {
  SimTime t = 0;
  u64 index = 0;
  std::vector<std::pair<u8, std::string>> defs;
  std::vector<std::pair<u32, u64>> counters;  ///< id, delta
  std::vector<std::pair<u32, u64>> gauges;    ///< id, value bits
  struct HistDelta {
    u32 id = 0;
    u64 dcount = 0, dsum = 0, min = 0, max = 0;
    std::vector<std::pair<u8, u64>> buckets;  ///< bucket index, count delta
  };
  std::vector<HistDelta> hists;
};

bool decode_frame(const u8* p, std::size_t n, std::size_t known_defs,
                  FrameDeltas& out) {
  Cursor c{p, n};
  out.t = c.take_i64();
  out.index = c.take_u64();
  const u32 ndefs = c.take_u32();
  if (!c.ok || ndefs > n) return false;  // cheap bound: one def > 7 bytes
  std::size_t total_defs = known_defs;
  for (u32 i = 0; i < ndefs; ++i) {
    const u8 kind = c.take_u8();
    const u32 id = c.take_u32();
    std::string key = c.take_str(kMaxStr);
    if (!c.ok || kind > kKindHist) return false;
    if (id != total_defs + 1) return false;  // ids must stay dense
    ++total_defs;
    out.defs.emplace_back(kind, std::move(key));
  }
  const u32 nctrs = c.take_u32();
  if (!c.ok || nctrs > n) return false;
  for (u32 i = 0; i < nctrs; ++i) {
    const u32 id = c.take_u32();
    const u64 d = c.take_u64();
    if (!c.ok || id == 0 || id > total_defs) return false;
    out.counters.emplace_back(id, d);
  }
  const u32 ngauges = c.take_u32();
  if (!c.ok || ngauges > n) return false;
  for (u32 i = 0; i < ngauges; ++i) {
    const u32 id = c.take_u32();
    const u64 bits = c.take_u64();
    if (!c.ok || id == 0 || id > total_defs) return false;
    out.gauges.emplace_back(id, bits);
  }
  const u32 nhists = c.take_u32();
  if (!c.ok || nhists > n) return false;
  for (u32 i = 0; i < nhists; ++i) {
    FrameDeltas::HistDelta h;
    h.id = c.take_u32();
    h.dcount = c.take_u64();
    h.dsum = c.take_u64();
    h.min = c.take_u64();
    h.max = c.take_u64();
    const u16 nb = c.take_u16();
    if (!c.ok || h.id == 0 || h.id > total_defs ||
        nb > Histogram::kBuckets) {
      return false;
    }
    for (u16 b = 0; b < nb; ++b) {
      const u8 bi = c.take_u8();
      const u64 d = c.take_u64();
      if (!c.ok || bi >= Histogram::kBuckets) return false;
      h.buckets.emplace_back(bi, d);
    }
    out.hists.push_back(std::move(h));
  }
  return c.ok && c.off == n;
}

/// Apply a validated frame to the materialized state + id table. `defs`
/// maps id-1 -> (kind, key).
void apply_frame(const FrameDeltas& f,
                 std::vector<std::pair<u8, std::string>>& defs,
                 StreamState& state) {
  for (const auto& [kind, key] : f.defs) {
    switch (kind) {
      case kKindCounter: state.counters.emplace(key, 0); break;
      case kKindGauge: state.gauges.emplace(key, 0.0); break;
      default: state.hists.emplace(key, StreamHistState{}); break;
    }
    state.changed_at[key] = f.t;
    defs.emplace_back(kind, key);
  }
  for (const auto& [id, d] : f.counters) {
    const auto& [kind, key] = defs[id - 1];
    if (kind != kKindCounter) continue;  // validated id, stale kind: skip
    state.counters[key] += d;
    state.changed_at[key] = f.t;
  }
  for (const auto& [id, bits] : f.gauges) {
    const auto& [kind, key] = defs[id - 1];
    if (kind != kKindGauge) continue;
    state.gauges[key] = std::bit_cast<double>(bits);
    state.changed_at[key] = f.t;
  }
  for (const auto& h : f.hists) {
    const auto& [kind, key] = defs[h.id - 1];
    if (kind != kKindHist) continue;
    StreamHistState& s = state.hists[key];
    s.count += h.dcount;
    s.sum += h.dsum;
    s.min = h.min;
    s.max = h.max;
    for (const auto& [bi, d] : h.buckets) s.buckets[bi] += d;
    state.changed_at[key] = f.t;
  }
}

}  // namespace

const journal::FrameSpec& stream_frame_spec() {
  // "HTTS" little-endian; payload cap sized for a worst-case baseline
  // frame at full registry cardinality (4096 series of 44-bucket
  // histograms), far past which a length field is corruption.
  static const journal::FrameSpec spec{0x53545448u, 1, kFrameType, kFrameType,
                                       1u << 23};
  return spec;
}

// ---------------------------------------------------------------------------
// SnapshotStreamer
// ---------------------------------------------------------------------------

SnapshotStreamer::SnapshotStreamer(journal::JournalStore& store, Options opts)
    : store_(store), opts_(opts) {
  // Open-for-append repair, same contract as JournalWriter: truncate a
  // torn tail off the LAST segment, then replay the intact frames to
  // rebuild the id table and the delta baseline.
  const auto names = store_.segments();
  std::vector<std::pair<u8, std::string>> defs;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::vector<u8> bytes = store_.read(names[i]);
    const journal::ScanResult r = scan_frames(stream_frame_spec(), bytes);
    open_stats_.quarantined += r.quarantined;
    if (i + 1 == names.size() && r.good_end < bytes.size()) {
      open_stats_.torn_tail = true;
      open_stats_.torn_bytes_dropped += bytes.size() - r.good_end;
      store_.truncate(names[i], r.good_end);
    }
    std::size_t off = 0;
    while (off < r.good_end) {
      journal::FrameView v;
      if (parse_frame(stream_frame_spec(), bytes, off, &v) !=
          journal::FrameStatus::kOk) {
        off = next_frame_magic(stream_frame_spec(), bytes, off);
        continue;
      }
      FrameDeltas f;
      if (decode_frame(v.payload, v.payload_len, defs.size(), f)) {
        apply_frame(f, defs, state_);
        ++open_stats_.records;
        ++frames_;
        last_at_ = f.t;
      } else {
        ++open_stats_.quarantined;
      }
      off = v.end;
    }
  }
  for (u32 id = 1; id <= defs.size(); ++id) {
    const auto& [kind, key] = defs[id - 1];
    switch (kind) {
      case kKindCounter: counter_ids_[key] = id; break;
      case kKindGauge: gauge_ids_[key] = id; break;
      default: hist_ids_[key] = id; break;
    }
  }
  next_id_ = static_cast<u32>(defs.size()) + 1;
  if (!names.empty()) {
    active_ = names.back();
    active_bytes_ = store_.size(active_);
    seg_index_ = names.size();
  } else {
    active_ = journal::segment_file_name(seg_index_++, kStreamExtension);
  }
}

void SnapshotStreamer::capture(SimTime t, const Registry& reg) {
  std::vector<u8> defs, ctrs, gauges, hists;
  u32 ndefs = 0, nctrs = 0, ngauges = 0, nhists = 0;

  reg.for_each_counter([&](const std::string& key, const Counter& c) {
    const u64 v = c.value();
    auto [it, fresh] = counter_ids_.try_emplace(key, 0);
    if (fresh) {
      it->second = next_id_++;
      put_u8(defs, kKindCounter);
      put_u32(defs, it->second);
      put_str(defs, key, kMaxStr);
      ++ndefs;
      state_.counters.emplace(key, 0);
      state_.changed_at[key] = t;
    }
    u64& prev = state_.counters[key];
    if (v != prev) {
      put_u32(ctrs, it->second);
      put_u64(ctrs, v - prev);  // wrapping: decoder adds mod 2^64
      ++nctrs;
      prev = v;
      state_.changed_at[key] = t;
    }
  });

  reg.for_each_gauge([&](const std::string& key, const Gauge& g) {
    const u64 bits = std::bit_cast<u64>(g.value());
    auto [it, fresh] = gauge_ids_.try_emplace(key, 0);
    if (fresh) {
      it->second = next_id_++;
      put_u8(defs, kKindGauge);
      put_u32(defs, it->second);
      put_str(defs, key, kMaxStr);
      ++ndefs;
      state_.gauges.emplace(key, 0.0);
      state_.changed_at[key] = t;
    }
    double& prev = state_.gauges[key];
    if (bits != std::bit_cast<u64>(prev)) {
      put_u32(gauges, it->second);
      put_u64(gauges, bits);
      ++ngauges;
      prev = std::bit_cast<double>(bits);
      state_.changed_at[key] = t;
    }
  });

  reg.for_each_histogram([&](const std::string& key, const Histogram& h) {
    auto [it, fresh] = hist_ids_.try_emplace(key, 0);
    if (fresh) {
      it->second = next_id_++;
      put_u8(defs, kKindHist);
      put_u32(defs, it->second);
      put_str(defs, key, kMaxStr);
      ++ndefs;
      state_.hists.emplace(key, StreamHistState{});
      state_.changed_at[key] = t;
    }
    StreamHistState& prev = state_.hists[key];
    const u64 count = h.count();
    if (count == prev.count && h.sum() == prev.sum && h.min() == prev.min &&
        h.max() == prev.max) {
      return;  // count/sum never move without a bucket moving
    }
    put_u32(hists, it->second);
    put_u64(hists, count - prev.count);
    put_u64(hists, h.sum() - prev.sum);
    put_u64(hists, h.min());
    put_u64(hists, h.max());
    std::vector<std::pair<u8, u64>> changed;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const u64 b = h.bucket_count(i);
      if (b != prev.buckets[i]) {
        changed.emplace_back(static_cast<u8>(i), b - prev.buckets[i]);
        prev.buckets[i] = b;
      }
    }
    put_u16(hists, static_cast<u16>(changed.size()));
    for (const auto& [bi, d] : changed) {
      put_u8(hists, bi);
      put_u64(hists, d);
    }
    ++nhists;
    prev.count = count;
    prev.sum = h.sum();
    prev.min = h.min();
    prev.max = h.max();
    state_.changed_at[key] = t;
  });

  std::vector<u8> payload;
  payload.reserve(32 + defs.size() + ctrs.size() + gauges.size() +
                  hists.size());
  put_i64(payload, t);
  put_u64(payload, frames_);
  put_u32(payload, ndefs);
  payload.insert(payload.end(), defs.begin(), defs.end());
  put_u32(payload, nctrs);
  payload.insert(payload.end(), ctrs.begin(), ctrs.end());
  put_u32(payload, ngauges);
  payload.insert(payload.end(), gauges.begin(), gauges.end());
  put_u32(payload, nhists);
  payload.insert(payload.end(), hists.begin(), hists.end());
  append_frame(payload);
  ++frames_;
  last_at_ = t;
  if (observer_) observer_(t, state_);
}

void SnapshotStreamer::append_frame(const std::vector<u8>& payload) {
  if (active_bytes_ >= opts_.segment_bytes) {
    active_ = journal::segment_file_name(seg_index_++, kStreamExtension);
    active_bytes_ = 0;
  }
  const std::vector<u8> rec =
      seal_frame(stream_frame_spec(), kFrameType, payload);
  store_.append(active_, rec.data(), rec.size());
  active_bytes_ += rec.size();
  bytes_written_ += rec.size();
}

// ---------------------------------------------------------------------------
// SnapshotStreamReader
// ---------------------------------------------------------------------------

SnapshotStreamReader::SnapshotStreamReader(const journal::JournalStore& store)
    : store_(store), names_(store.segments()) {}

bool SnapshotStreamReader::load_next_segment() {
  while (seg_i_ < names_.size()) {
    buf_ = store_.read(names_[seg_i_]);
    last_segment_ = seg_i_ + 1 == names_.size();
    ++seg_i_;
    off_ = 0;
    if (!buf_.empty()) return true;
  }
  return false;
}

bool SnapshotStreamReader::next() {
  for (;;) {
    if (off_ >= buf_.size()) {
      if (!load_next_segment()) return false;
    }
    journal::FrameView v;
    switch (parse_frame(stream_frame_spec(), buf_, off_, &v)) {
      case journal::FrameStatus::kOk: {
        FrameDeltas f;
        const bool ok = decode_frame(v.payload, v.payload_len, defs_.size(), f);
        off_ = v.end;
        if (!ok) {
          ++quarantined_;
          continue;
        }
        apply_frame(f, defs_, state_);
        time_ = f.t;
        index_ = f.index;
        ++frames_read_;
        return true;
      }
      case journal::FrameStatus::kTorn:
        if (last_segment_) {
          torn_tail_ = true;
        } else {
          ++quarantined_;
        }
        off_ = buf_.size();
        continue;
      case journal::FrameStatus::kBad:
        ++quarantined_;
        off_ = next_frame_magic(stream_frame_spec(), buf_, off_);
        continue;
    }
  }
}

}  // namespace hvsim::telemetry
