// SLO rule engine: declarative health rules evaluated over the live
// telemetry stream, raising `ht_slo_*` alarms into the pipeline's
// AlarmSink so the recovery ladder reacts to monitor-health regressions
// exactly the way it reacts to guest invariant violations.
//
// Four rule kinds cover the regression shapes a fleet soak produces:
//   threshold      — instantaneous value above/below a bound
//   rate-of-change — first derivative per simulated second over the
//                    inter-frame window
//   absence        — a series silent (or never defined) longer than a
//                    staleness budget; empty heartbeat frames advance the
//                    clock, so "quiet" and "dead" are distinguishable
//   quantile       — Histogram::quantile(p) above/below a bound
//
// Rules are plain structs, or parsed from one-line text form (the grammar
// DESIGN.md §14 documents):
//
//   <name>: threshold <series> <above|below> <bound> [for <n>]
//   <name>: rate <series> <above|below> <bound-per-s> [for <n>]
//   <name>: absence <series> <duration>              [for <n>]
//   <name>: quantile p<q> <series> <above|below> <bound> [for <n>]
//
// with durations taking ns/us/ms/s suffixes and `for <n>` debouncing a
// rule until it breaches on n consecutive frames.
//
// Determinism: evaluation consumes only frame times and materialized
// stream state; the engine holds no wall-clock state, so identical streams
// produce identical alarm sequences.
#pragma once

#include <string>
#include <vector>

#include "core/auditor.hpp"
#include "telemetry/stream.hpp"
#include "telemetry/telemetry.hpp"
#include "util/types.hpp"

namespace hvsim::telemetry {

struct SloRule {
  enum class Kind : u8 { kThreshold, kRateOfChange, kAbsence, kQuantile };
  enum class Cmp : u8 { kAbove, kBelow };

  std::string name;    ///< stable rule id (alarm detail + state lookup)
  Kind kind = Kind::kThreshold;
  std::string series;  ///< canonical series key (Registry::series_key)
  Cmp cmp = Cmp::kAbove;
  double bound = 0.0;     ///< threshold / rate-per-sim-second / quantile bound
  double quantile = 0.99; ///< kQuantile only
  SimTime staleness = 0;  ///< kAbsence: max silent window (ns)
  u32 for_frames = 1;     ///< consecutive breaching frames before firing
};

/// Parse one rule line (see grammar above). Throws std::invalid_argument
/// with the offending token on malformed input — rules are configuration,
/// so they fail loudly at load time, never silently at evaluation time.
SloRule parse_slo_rule(const std::string& line);

/// Parse a rule file: one rule per line, blank lines and `#` comments
/// skipped.
std::vector<SloRule> parse_slo_rules(const std::string& text);

class SloEngine {
 public:
  explicit SloEngine(std::vector<SloRule> rules);

  /// Alarms (`ht_slo_breach` on entering breach, `ht_slo_clear` on
  /// leaving) are raised into this sink. nullptr = evaluate only.
  void set_alarm_sink(hypertap::AlarmSink* sink) { sink_ = sink; }

  /// Wire ht_slo_evals_total / ht_slo_breaches_total plus a per-rule
  /// breach counter.
  void set_telemetry(Telemetry* t);

  /// Evaluate every rule against one stream frame (monotone sim time).
  void evaluate(SimTime t, const StreamState& s);

  /// Subscribe as `streamer`'s observer: every capture evaluates.
  void observe(SnapshotStreamer& streamer);

  struct RuleState {
    bool firing = false;
    u32 streak = 0;        ///< consecutive breaching frames
    double value = 0.0;    ///< last evaluated value
    u64 breaches = 0;      ///< firing transitions
    SimTime fired_at = -1; ///< last transition into breach
  };
  /// nullptr for an unknown rule name.
  const RuleState* state(const std::string& name) const;

  const std::vector<SloRule>& rules() const { return rules_; }
  u64 evaluations() const { return evaluations_; }
  u64 breaches_total() const { return breaches_total_; }

 private:
  struct PerRule {
    RuleState st;
    double prev_value = 0.0;   ///< kRateOfChange baseline
    bool have_prev = false;
    telemetry::Counter* breach_counter = nullptr;
  };

  std::vector<SloRule> rules_;
  std::vector<PerRule> per_rule_;
  hypertap::AlarmSink* sink_ = nullptr;
  SimTime first_eval_at_ = -1;  ///< absence baseline for never-seen series
  SimTime prev_eval_at_ = -1;
  u64 evaluations_ = 0;
  u64 breaches_total_ = 0;

  telemetry::Counter* evals_counter_ = nullptr;
  telemetry::Counter* breaches_counter_ = nullptr;
};

}  // namespace hvsim::telemetry
