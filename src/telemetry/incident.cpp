#include "telemetry/incident.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>

#include "journal/journal.hpp"
#include "telemetry/json.hpp"

namespace hvsim::telemetry {

void IncidentReporter::set_telemetry(Telemetry* t, int vm_id) {
  telemetry_ = t;
  vm_id_ = vm_id;
  if (t != nullptr) {
    incidents_counter_ = t->registry.counter("ht_incidents_total");
    suppressed_counter_ = t->registry.counter("ht_incidents_suppressed_total");
  }
}

bool IncidentReporter::is_incident_alarm(const std::string& type) {
  return type == "vcpu-hang" || type == "full-hang" || type == "hidden-task" ||
         type == "auditor-quarantined" || type == "rhc-liveness" ||
         type == "ht_slo_breach" || type == "vm-failed";
}

void IncidentReporter::attach(hypertap::AlarmSink& sink) {
  sink.subscribe([this](const hypertap::Alarm& a) {
    if (!is_incident_alarm(a.type)) return;
    if (opt_.min_gap > 0 && last_alarm_report_at_ >= 0 &&
        a.time - last_alarm_report_at_ < opt_.min_gap) {
      ++suppressed_;
      HT_COUNT(suppressed_counter_);
      return;
    }
    if (report(a.time, a, "alarm:" + a.type) != nullptr) {
      last_alarm_report_at_ = a.time;
    }
  });
}

void IncidentReporter::build_chain(Incident* inc) const {
  if (telemetry_ == nullptr) return;
  const Tracer& tr = telemetry_->tracer;
  const auto& spans = tr.spans();

  // The detecting pass: the trigger's auditor's last completed audit span
  // at or before the alarm. Walking backward finds it in O(spans since).
  const Tracer::Span* audit = nullptr;
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    const Tracer::Span& s = *it;
    if (s.instant || s.pid != inc->vm || s.end < 0) continue;
    if (std::string_view(s.name) != "audit") continue;
    if (s.arg != inc->trigger.auditor) continue;
    if (s.end > inc->trigger.time) continue;
    audit = &s;
    break;
  }
  if (audit == nullptr) return;
  const Tracer::Span* forward = tr.by_id(audit->parent);
  const Tracer::Span* exit = forward != nullptr ? tr.by_id(forward->parent)
                                                : nullptr;

  // Each hop reports its span's own begin/end/duration. The stages NEST
  // (the exit span covers the whole dispatch, forward covers the fan-out,
  // audit the one auditor), so latencies overlap rather than sum — the
  // end-to-end figure is detection_latency, the per-hop ones say how deep
  // into each stage the event spent its life.
  auto hop = [](const char* stage, const Tracer::Span* s) {
    Hop h;
    h.stage = stage;
    h.begin = s->begin;
    h.end = s->end;
    h.latency = s->end - s->begin;
    h.span = s->id;
    return h;
  };
  if (exit != nullptr) inc->chain.push_back(hop("exit", exit));
  if (forward != nullptr) inc->chain.push_back(hop("forward", forward));
  inc->chain.push_back(hop("audit", audit));
  // The gap between the audit completing and the alarm surfacing: verdict
  // analysis / sink delivery, attributed as its own hop so no interval of
  // the detection window goes unaccounted.
  Hop gap;
  gap.stage = "analysis";
  gap.begin = audit->end;
  gap.end = inc->trigger.time;
  gap.latency = inc->trigger.time > audit->end
                    ? inc->trigger.time - audit->end
                    : 0;
  inc->chain.push_back(gap);

  const Tracer::Span* origin =
      exit != nullptr ? exit : (forward != nullptr ? forward : audit);
  inc->guest_event_at = origin->begin;
  inc->detection_latency = inc->trigger.time - origin->begin;
}

const IncidentReporter::Incident* IncidentReporter::report(
    SimTime now, const hypertap::Alarm& trigger, std::string reason) {
  if (incidents_.size() >= opt_.max_incidents) {
    ++suppressed_;
    HT_COUNT(suppressed_counter_);
    return nullptr;
  }
  if (incidents_.capacity() < opt_.max_incidents) {
    // Hard cap, so reserving keeps returned pointers stable for life.
    incidents_.reserve(opt_.max_incidents);
  }

  Incident inc;
  inc.vm = vm_id_;
  inc.seq = incidents_.size();
  inc.at = now;
  inc.reason = std::move(reason);
  inc.trigger = trigger;
  build_chain(&inc);

  inc.checkpoint_mark = checkpoint_mark_ ? checkpoint_mark_() : 0;
  inc.journal_records = journal_ != nullptr ? journal_->records() : 0;
  inc.journal_suffix = inc.journal_records > inc.checkpoint_mark
                           ? inc.journal_records - inc.checkpoint_mark
                           : 0;
  if (ledger_) inc.ledger = ledger_();
  if (telemetry_ != nullptr) inc.flight = telemetry_->flight.ring(vm_id_);

  if (!opt_.dir.empty()) {
    std::filesystem::create_directories(opt_.dir);
    const std::string path = opt_.dir + "/incident_" +
                             std::to_string(inc.vm) + "_" +
                             std::to_string(inc.seq) + ".json";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << render_json(inc);
    if (os.good()) inc.file = path;
  }

  HT_COUNT(incidents_counter_);
  incidents_.push_back(std::move(inc));
  return &incidents_.back();
}

std::string IncidentReporter::render_json(const Incident& inc) {
  std::ostringstream os;
  os << "{\"schema\":\"hypertap-incident-v1\"";
  os << ",\"vm\":" << inc.vm << ",\"seq\":" << json_num(inc.seq)
     << ",\"at\":" << json_num(inc.at)
     << ",\"reason\":" << json_str(inc.reason);
  os << ",\"trigger\":{\"time\":" << json_num(inc.trigger.time)
     << ",\"auditor\":" << json_str(inc.trigger.auditor)
     << ",\"type\":" << json_str(inc.trigger.type)
     << ",\"detail\":" << json_str(inc.trigger.detail)
     << ",\"vcpu\":" << inc.trigger.vcpu
     << ",\"pid\":" << json_num(static_cast<u64>(inc.trigger.pid)) << "}";
  os << ",\"guest_event_at\":" << json_num(inc.guest_event_at)
     << ",\"detection_latency\":" << json_num(inc.detection_latency);
  os << ",\"chain\":[";
  for (std::size_t i = 0; i < inc.chain.size(); ++i) {
    const Hop& h = inc.chain[i];
    if (i != 0) os << ',';
    os << "{\"stage\":\"" << h.stage << "\",\"begin\":" << json_num(h.begin)
       << ",\"end\":" << json_num(h.end)
       << ",\"latency\":" << json_num(h.latency)
       << ",\"span\":" << json_num(static_cast<u64>(h.span)) << "}";
  }
  os << "]";
  os << ",\"journal\":{\"checkpoint_mark\":" << json_num(inc.checkpoint_mark)
     << ",\"records\":" << json_num(inc.journal_records)
     << ",\"suffix\":" << json_num(inc.journal_suffix) << "}";
  os << ",\"ledger\":[";
  for (std::size_t i = 0; i < inc.ledger.size(); ++i) {
    const auto& r = inc.ledger[i];
    if (i != 0) os << ',';
    os << "{\"at\":" << json_num(r.at) << ",\"attempt\":" << r.attempt
       << ",\"remedy\":" << json_str(hypertap::recovery::to_string(r.kind))
       << ",\"ok\":" << (r.ok ? "true" : "false")
       << ",\"trigger\":" << json_str(r.trigger)
       << ",\"pid\":" << json_num(static_cast<u64>(r.pid)) << "}";
  }
  os << "]";
  os << ",\"flight\":[";
  for (std::size_t i = 0; i < inc.flight.size(); ++i) {
    const auto& e = inc.flight[i];
    if (i != 0) os << ',';
    os << "{\"t\":" << json_num(e.t)
       << ",\"kind\":" << json_str(FlightRecorder::to_string(e.kind))
       << ",\"label\":" << json_str(e.label)
       << ",\"detail\":" << json_str(e.detail)
       << ",\"span\":" << json_num(static_cast<u64>(e.span)) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hvsim::telemetry
