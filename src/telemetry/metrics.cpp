#include "telemetry/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/json.hpp"

namespace hvsim::telemetry {

std::string Registry::series_key(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string key = name;
  if (!labels.empty()) {
    key += '{';
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) key += ',';
      key += labels[i].first;
      key += "=\"";
      key += json_escape(labels[i].second);
      key += '"';
    }
    key += '}';
  }
  return key;
}

template <typename T>
T* Registry::get_series(std::map<std::string, std::unique_ptr<T>>& m,
                        const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t total =
      counters_.size() + gauges_.size() + histograms_.size();
  std::string key = series_key(name, std::move(labels));
  auto it = m.find(key);
  if (it != m.end()) return it->second.get();
  if (total >= cfg_.max_series) {
    // Cardinality guard: collapse into the per-name overflow series. The
    // overflow series itself is allowed past the cap so increments are
    // never lost entirely, only de-labelled.
    dropped_series_.fetch_add(1, std::memory_order_relaxed);
    key = series_key(name, {{"overflow", "true"}});
    it = m.find(key);
    if (it != m.end()) return it->second.get();
  }
  auto owned = std::make_unique<T>();
  T* raw = owned.get();
  m.emplace(std::move(key), std::move(owned));
  return raw;
}

void Histogram::merge_from(const Histogram& src) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const u64 n = src.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(src.count(), std::memory_order_relaxed);
  sum_.fetch_add(src.sum(), std::memory_order_relaxed);
  if (src.count() > 0) {
    update_min(src.min());
    update_max(src.max());
  }
}

u64 Histogram::quantile_from(const u64* bucket_counts, std::size_t n,
                             u64 count, u64 max_seen, double p) {
  if (count == 0 || n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the target sample, 1-based: ceil(p * count), at least 1.
  const u64 rank = std::max<u64>(
      1, count - static_cast<u64>(static_cast<double>(count) * (1.0 - p)));
  u64 cum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cum += bucket_counts[i];
    if (cum >= rank) {
      // Overflow bucket has no finite bound; the largest sample seen is
      // the tightest true statement about those samples.
      return i + 1 >= n ? max_seen : bucket_le(i);
    }
  }
  return max_seen;
}

u64 Histogram::quantile(double p) const {
  u64 buckets[kBuckets];
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] = bucket_count(i);
  return quantile_from(buckets, kBuckets, count(), max(), p);
}

/// Find-or-create by canonical key (merge path: the key is already built).
/// Applies the same cardinality guard as get_series, collapsing into the
/// family's overflow series past the cap.
template <typename T>
T* Registry::series_by_key(std::map<std::string, std::unique_ptr<T>>& m,
                           const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = m.find(key);
  if (it != m.end()) return it->second.get();
  const std::size_t total =
      counters_.size() + gauges_.size() + histograms_.size();
  std::string use = key;
  if (total >= cfg_.max_series) {
    dropped_series_.fetch_add(1, std::memory_order_relaxed);
    const auto brace = key.find('{');
    const std::string family =
        brace == std::string::npos ? key : key.substr(0, brace);
    use = series_key(family, {{"overflow", "true"}});
    it = m.find(use);
    if (it != m.end()) return it->second.get();
  }
  auto owned = std::make_unique<T>();
  T* raw = owned.get();
  m.emplace(std::move(use), std::move(owned));
  return raw;
}

void Registry::merge_from(const Registry& src) {
  // Snapshot the source key sets first: both registries are quiescent by
  // contract, but holding both mutexes at once would invite lock-order
  // trouble for no benefit.
  std::vector<std::pair<std::string, const Counter*>> counters;
  std::vector<std::pair<std::string, const Gauge*>> gauges;
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  {
    std::lock_guard<std::mutex> lk(src.mu_);
    for (const auto& [k, v] : src.counters_) counters.emplace_back(k, v.get());
    for (const auto& [k, v] : src.gauges_) gauges.emplace_back(k, v.get());
    for (const auto& [k, v] : src.histograms_)
      histograms.emplace_back(k, v.get());
  }
  for (const auto& [k, c] : counters) {
    Counter* dst = series_by_key(counters_, k);
    if (c->value() != 0) dst->inc(c->value());
  }
  for (const auto& [k, g] : gauges) {
    series_by_key(gauges_, k)->add(g->value());
  }
  for (const auto& [k, h] : histograms) {
    series_by_key(histograms_, k)->merge_from(*h);
  }
}

Counter* Registry::counter(const std::string& name, Labels labels) {
  return get_series(counters_, name, std::move(labels));
}
Gauge* Registry::gauge(const std::string& name, Labels labels) {
  return get_series(gauges_, name, std::move(labels));
}
Histogram* Registry::histogram(const std::string& name, Labels labels) {
  return get_series(histograms_, name, std::move(labels));
}

const Counter* Registry::find_counter(const std::string& name,
                                      Labels labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = counters_.find(series_key(name, std::move(labels)));
  return it == counters_.end() ? nullptr : it->second.get();
}
const Gauge* Registry::find_gauge(const std::string& name,
                                  Labels labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = gauges_.find(series_key(name, std::move(labels)));
  return it == gauges_.end() ? nullptr : it->second.get();
}
const Histogram* Registry::find_histogram(const std::string& name,
                                          Labels labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = histograms_.find(series_key(name, std::move(labels)));
  return it == histograms_.end() ? nullptr : it->second.get();
}

u64 Registry::counter_value(const std::string& name, Labels labels) const {
  const Counter* c = find_counter(name, std::move(labels));
  return c == nullptr ? 0 : c->value();
}

std::size_t Registry::series_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, c] : counters_) fn(key, *c);
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, g] : gauges_) fn(key, *g);
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, h] : histograms_) fn(key, *h);
}

namespace {

/// "name{labels}" -> name (for # TYPE family headers).
std::string family_of(const std::string& key) {
  const auto brace = key.find('{');
  return brace == std::string::npos ? key : key.substr(0, brace);
}

/// Splice extra labels (le="...") into a series key, or append a fresh
/// label block when the series has none.
std::string with_label(const std::string& key, const std::string& label) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return key + "{" + label + "}";
  std::string out = key;
  out.insert(out.size() - 1, "," + label);
  return out;
}

std::string suffixed(const std::string& key, const std::string& suffix) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return key + suffix;
  return key.substr(0, brace) + suffix + key.substr(brace);
}

}  // namespace

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  std::string family;
  for (const auto& [key, c] : counters_) {
    if (const std::string f = family_of(key); f != family) {
      family = f;
      os << "# TYPE " << family << " counter\n";
    }
    os << key << " " << c->value() << "\n";
  }
  family.clear();
  for (const auto& [key, g] : gauges_) {
    if (const std::string f = family_of(key); f != family) {
      family = f;
      os << "# TYPE " << family << " gauge\n";
    }
    os << key << " " << json_num(g->value()) << "\n";
  }
  family.clear();
  for (const auto& [key, h] : histograms_) {
    if (const std::string f = family_of(key); f != family) {
      family = f;
      os << "# TYPE " << family << " histogram\n";
    }
    u64 cum = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const u64 n = h->bucket_count(i);
      if (n == 0 && i != Histogram::kOverflow) continue;
      cum += n;
      const std::string le =
          i == Histogram::kOverflow ? "+Inf"
                                    : std::to_string(Histogram::bucket_le(i));
      os << with_label(suffixed(key, "_bucket"), "le=\"" + le + "\"") << " "
         << cum << "\n";
    }
    os << suffixed(key, "_sum") << " " << h->sum() << "\n";
    os << suffixed(key, "_count") << " " << h->count() << "\n";
  }
  return os.str();
}

std::string Registry::json() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [key, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << json_str(key) << ":" << c->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [key, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << json_str(key) << ":" << json_num(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [key, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << json_str(key) << ":{\"count\":" << h->count()
       << ",\"sum\":" << h->sum() << ",\"min\":" << h->min()
       << ",\"max\":" << h->max() << ",\"p50\":" << h->quantile(0.5)
       << ",\"p99\":" << h->quantile(0.99) << ",\"buckets\":{";
    bool bfirst = true;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const u64 n = h->bucket_count(i);
      if (n == 0) continue;
      if (!bfirst) os << ",";
      bfirst = false;
      const std::string le =
          i == Histogram::kOverflow ? "+Inf"
                                    : std::to_string(Histogram::bucket_le(i));
      os << json_str(le) << ":" << n;
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

}  // namespace hvsim::telemetry
