// Minimal JSON emission helpers shared by the telemetry exposition
// formats (metrics snapshots, Chrome trace files) and the bench harness
// reports (BENCH_<name>.json).
//
// Deliberately tiny: we only ever *write* JSON, never parse it, and every
// writer in this codebase composes documents by hand, so two helpers
// (string escaping and deterministic number formatting) cover all of it.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace hvsim::telemetry {

/// Escape a string for inclusion between double quotes in JSON.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Quote + escape.
inline std::string json_str(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

/// Deterministic number formatting: integral values print without a
/// fractional part, everything else with enough digits to round-trip.
/// Non-finite values (never produced by the sim, but benches divide) are
/// mapped to null per JSON rules.
inline std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

inline std::string json_num(std::uint64_t v) { return std::to_string(v); }
inline std::string json_num(std::int64_t v) { return std::to_string(v); }
inline std::string json_num(int v) { return std::to_string(v); }

}  // namespace hvsim::telemetry
