#include "telemetry/slo.hpp"

#include <sstream>
#include <stdexcept>

#include "telemetry/json.hpp"

namespace hvsim::telemetry {

// ---------------------------------------------------------------------------
// Rule grammar
// ---------------------------------------------------------------------------

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void bad_rule(const std::string& line, const std::string& why) {
  throw std::invalid_argument("slo rule \"" + line + "\": " + why);
}

SloRule::Cmp parse_cmp(const std::string& line, const std::string& tok) {
  if (tok == "above" || tok == ">") return SloRule::Cmp::kAbove;
  if (tok == "below" || tok == "<") return SloRule::Cmp::kBelow;
  bad_rule(line, "expected above/below, got \"" + tok + "\"");
}

double parse_number(const std::string& line, const std::string& tok) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    bad_rule(line, "expected a number, got \"" + tok + "\"");
  }
  if (used != tok.size()) {
    bad_rule(line, "trailing characters in number \"" + tok + "\"");
  }
  return v;
}

SimTime parse_duration(const std::string& line, const std::string& tok) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(tok, &used);
  } catch (const std::exception&) {
    bad_rule(line, "expected a duration, got \"" + tok + "\"");
  }
  const std::string unit = tok.substr(used);
  double scale = 0;
  if (unit == "ns") scale = 1;
  else if (unit == "us") scale = 1e3;
  else if (unit == "ms") scale = 1e6;
  else if (unit == "s") scale = 1e9;
  else bad_rule(line, "duration needs a ns/us/ms/s suffix: \"" + tok + "\"");
  return static_cast<SimTime>(v * scale);
}

}  // namespace

SloRule parse_slo_rule(const std::string& line) {
  auto toks = tokenize(line);
  if (toks.size() < 3) bad_rule(line, "too short");
  SloRule r;
  // "<name>:" — the colon may be glued to the name or stand alone.
  r.name = toks[0];
  std::size_t i = 1;
  if (r.name.size() > 1 && r.name.back() == ':') {
    r.name.pop_back();
  } else if (i < toks.size() && toks[i] == ":") {
    ++i;
  } else {
    bad_rule(line, "expected \"<name>:\"");
  }
  if (i >= toks.size()) bad_rule(line, "missing rule kind");
  const std::string kind = toks[i++];

  auto need = [&](const char* what) -> const std::string& {
    if (i >= toks.size()) bad_rule(line, std::string("missing ") + what);
    return toks[i++];
  };

  if (kind == "threshold" || kind == "rate") {
    r.kind = kind == "threshold" ? SloRule::Kind::kThreshold
                                 : SloRule::Kind::kRateOfChange;
    r.series = need("series");
    r.cmp = parse_cmp(line, need("comparator"));
    r.bound = parse_number(line, need("bound"));
  } else if (kind == "absence") {
    r.kind = SloRule::Kind::kAbsence;
    r.series = need("series");
    r.staleness = parse_duration(line, need("staleness duration"));
  } else if (kind == "quantile") {
    r.kind = SloRule::Kind::kQuantile;
    const std::string q = need("quantile (p50/p99/...)");
    if (q.size() < 2 || q[0] != 'p') bad_rule(line, "quantile must be pNN");
    r.quantile = parse_number(line, q.substr(1)) / 100.0;
    if (r.quantile <= 0.0 || r.quantile > 1.0) {
      bad_rule(line, "quantile out of (0,100]");
    }
    r.series = need("series");
    r.cmp = parse_cmp(line, need("comparator"));
    r.bound = parse_number(line, need("bound"));
  } else {
    bad_rule(line, "unknown kind \"" + kind + "\"");
  }

  if (i < toks.size()) {
    if (toks[i] != "for") bad_rule(line, "unexpected \"" + toks[i] + "\"");
    ++i;
    const double n = parse_number(line, need("frame count after `for`"));
    if (n < 1) bad_rule(line, "`for` count must be >= 1");
    r.for_frames = static_cast<u32>(n);
  }
  if (i < toks.size()) bad_rule(line, "trailing tokens");
  return r;
}

std::vector<SloRule> parse_slo_rules(const std::string& text) {
  std::vector<SloRule> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    out.push_back(parse_slo_rule(line));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

SloEngine::SloEngine(std::vector<SloRule> rules)
    : rules_(std::move(rules)), per_rule_(rules_.size()) {}

void SloEngine::set_telemetry(Telemetry* t) {
  if (t == nullptr) return;
  evals_counter_ = t->registry.counter("ht_slo_evals_total");
  breaches_counter_ = t->registry.counter("ht_slo_breaches_total");
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    per_rule_[i].breach_counter =
        t->registry.counter("ht_slo_rule_breaches", {{"rule", rules_[i].name}});
  }
}

void SloEngine::observe(SnapshotStreamer& streamer) {
  streamer.set_observer(
      [this](SimTime t, const StreamState& s) { evaluate(t, s); });
}

namespace {

/// Numeric reading of a series for threshold/rate rules: counter value,
/// gauge value, or histogram count — whichever kind the key resolves to.
bool series_value(const StreamState& s, const std::string& key, double* out) {
  if (const auto it = s.counters.find(key); it != s.counters.end()) {
    *out = static_cast<double>(it->second);
    return true;
  }
  if (const auto it = s.gauges.find(key); it != s.gauges.end()) {
    *out = it->second;
    return true;
  }
  if (const auto it = s.hists.find(key); it != s.hists.end()) {
    *out = static_cast<double>(it->second.count);
    return true;
  }
  return false;
}

bool compare(SloRule::Cmp cmp, double value, double bound) {
  return cmp == SloRule::Cmp::kAbove ? value > bound : value < bound;
}

const char* kind_name(SloRule::Kind k) {
  switch (k) {
    case SloRule::Kind::kThreshold: return "threshold";
    case SloRule::Kind::kRateOfChange: return "rate";
    case SloRule::Kind::kAbsence: return "absence";
    case SloRule::Kind::kQuantile: return "quantile";
  }
  return "?";
}

}  // namespace

void SloEngine::evaluate(SimTime t, const StreamState& s) {
  if (first_eval_at_ < 0) first_eval_at_ = t;
  ++evaluations_;
  HT_COUNT(evals_counter_);

  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& r = rules_[i];
    PerRule& pr = per_rule_[i];

    bool have = false;
    double value = 0.0;
    bool breach = false;
    switch (r.kind) {
      case SloRule::Kind::kThreshold: {
        have = series_value(s, r.series, &value);
        breach = have && compare(r.cmp, value, r.bound);
        break;
      }
      case SloRule::Kind::kRateOfChange: {
        double now = 0.0;
        have = series_value(s, r.series, &now);
        if (have && pr.have_prev && t > prev_eval_at_) {
          const double dt =
              static_cast<double>(t - prev_eval_at_) / 1e9;  // sim seconds
          value = (now - pr.prev_value) / dt;
          breach = compare(r.cmp, value, r.bound);
        }
        if (have) {
          pr.prev_value = now;
          pr.have_prev = true;
        }
        break;
      }
      case SloRule::Kind::kAbsence: {
        // A series that never appeared is stale since the first
        // evaluation; heartbeat frames keep `t` advancing regardless.
        const auto it = s.changed_at.find(r.series);
        const SimTime last = it != s.changed_at.end() ? it->second
                                                      : first_eval_at_;
        have = true;
        value = static_cast<double>(t - last);
        breach = t - last > r.staleness;
        break;
      }
      case SloRule::Kind::kQuantile: {
        const auto it = s.hists.find(r.series);
        if (it != s.hists.end() && it->second.count > 0) {
          have = true;
          value = static_cast<double>(it->second.quantile(r.quantile));
          breach = compare(r.cmp, value, r.bound);
        }
        break;
      }
    }
    if (have) pr.st.value = value;

    if (breach) {
      ++pr.st.streak;
    } else {
      pr.st.streak = 0;
    }

    if (breach && !pr.st.firing && pr.st.streak >= r.for_frames) {
      pr.st.firing = true;
      pr.st.fired_at = t;
      ++pr.st.breaches;
      ++breaches_total_;
      HT_COUNT(breaches_counter_);
      HT_COUNT(pr.breach_counter);
      if (sink_ != nullptr) {
        hypertap::Alarm a;
        a.time = t;
        a.auditor = "slo";
        a.type = "ht_slo_breach";
        a.detail = std::string(kind_name(r.kind)) + " " + r.name + " " +
                   r.series + " value=" + json_num(value) +
                   " bound=" + json_num(r.bound);
        a.vcpu = -1;
        a.pid = 0;
        sink_->raise(a);
      }
    } else if (!breach && pr.st.firing) {
      pr.st.firing = false;
      if (sink_ != nullptr) {
        hypertap::Alarm a;
        a.time = t;
        a.auditor = "slo";
        a.type = "ht_slo_clear";
        a.detail = r.name + " " + r.series + " value=" + json_num(value);
        a.vcpu = -1;
        a.pid = 0;
        sink_->raise(a);
      }
    }
  }
  prev_eval_at_ = t;
}

const SloEngine::RuleState* SloEngine::state(const std::string& name) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].name == name) return &per_rule_[i].st;
  }
  return nullptr;
}

}  // namespace hvsim::telemetry
