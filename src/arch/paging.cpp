#include "arch/paging.hpp"

namespace hvsim::arch {

std::optional<Translation> walk(const PhysMem& mem, Gpa pdba, Gva va) {
  if ((pdba & PAGE_MASK) != 0) return std::nullopt;
  if (static_cast<std::size_t>(pdba) + PAGE_SIZE > mem.size())
    return std::nullopt;

  const u32 pde_idx = va >> 22;
  const u32 pte_idx = (va >> PAGE_SHIFT) & 0x3FF;

  const u32 pde = mem.rd32(pdba + pde_idx * 4);
  if (!(pde & PTE_PRESENT)) return std::nullopt;
  const Gpa pt_base = pde & PTE_FRAME_MASK;
  if (static_cast<std::size_t>(pt_base) + PAGE_SIZE > mem.size())
    return std::nullopt;

  const u32 pte = mem.rd32(pt_base + pte_idx * 4);
  if (!(pte & PTE_PRESENT)) return std::nullopt;

  Translation t;
  t.gpa = (pte & PTE_FRAME_MASK) | (va & PAGE_MASK);
  t.writable = (pte & PTE_WRITE) && (pde & PTE_WRITE);
  t.user = (pte & PTE_USER) && (pde & PTE_USER);
  if (static_cast<std::size_t>(t.gpa) >= mem.size()) return std::nullopt;
  return t;
}

void unmap_page(PhysMem& mem, Gpa pdba, Gva va) {
  const u32 pde_idx = va >> 22;
  const u32 pte_idx = (va >> PAGE_SHIFT) & 0x3FF;
  const u32 pde = mem.rd32(pdba + pde_idx * 4);
  if (!(pde & PTE_PRESENT)) return;
  mem.wr32((pde & PTE_FRAME_MASK) + pte_idx * 4, 0);
}

}  // namespace hvsim::arch
