// Classic x86 two-level paging: a 4 KiB page directory of 1024 PDEs, each
// pointing at a 4 KiB page table of 1024 PTEs. All structures live in guest
// physical memory, so page walks read actual guest bytes — exactly what the
// paper's process-counting algorithm (Fig. 3A) depends on when it validates
// a PDBA by translating a known GVA under it.
#pragma once

#include <optional>

#include "arch/phys_mem.hpp"
#include "util/types.hpp"

namespace hvsim::arch {

// PTE/PDE flag bits (x86 names).
inline constexpr u32 PTE_PRESENT = 1u << 0;
inline constexpr u32 PTE_WRITE = 1u << 1;
inline constexpr u32 PTE_USER = 1u << 2;
inline constexpr u32 PTE_FRAME_MASK = ~PAGE_MASK;

struct Translation {
  Gpa gpa = 0;
  bool writable = false;
  bool user = false;
};

/// Walk the two-level structure rooted at `pdba` (a page-aligned GPA).
/// Returns nullopt if any level is not present or `pdba` is out of range.
std::optional<Translation> walk(const PhysMem& mem, Gpa pdba, Gva va);

/// Map a single 4 KiB page `va -> pa`. `alloc_frame` is called when a page
/// table must be created; it must return a zeroed, page-aligned GPA.
template <typename FrameAlloc>
void map_page(PhysMem& mem, Gpa pdba, Gva va, Gpa pa, u32 flags,
              FrameAlloc&& alloc_frame) {
  const u32 pde_idx = va >> 22;
  const u32 pte_idx = (va >> PAGE_SHIFT) & 0x3FF;
  const Gpa pde_addr = pdba + pde_idx * 4;
  u32 pde = mem.rd32(pde_addr);
  if (!(pde & PTE_PRESENT)) {
    const Gpa pt = alloc_frame();
    pde = (pt & PTE_FRAME_MASK) | PTE_PRESENT | PTE_WRITE | PTE_USER;
    mem.wr32(pde_addr, pde);
  }
  const Gpa pt_base = pde & PTE_FRAME_MASK;
  mem.wr32(pt_base + pte_idx * 4,
           (pa & PTE_FRAME_MASK) | (flags & PAGE_MASK) | PTE_PRESENT);
}

/// Remove the mapping for `va` (no-op if absent).
void unmap_page(PhysMem& mem, Gpa pdba, Gva va);

}  // namespace hvsim::arch
