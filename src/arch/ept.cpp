#include "arch/ept.hpp"

namespace hvsim::arch {

const char* to_string(Access a) {
  switch (a) {
    case Access::kRead: return "read";
    case Access::kWrite: return "write";
    case Access::kExecute: return "execute";
  }
  return "?";
}

void Ept::write_protect(Gpa gpa, bool protect) {
  EptPerm p = get(gpa);
  p.w = !protect;
  set(gpa, p);
}

void Ept::exec_protect(Gpa gpa, bool protect) {
  EptPerm p = get(gpa);
  p.x = !protect;
  set(gpa, p);
}

}  // namespace hvsim::arch
