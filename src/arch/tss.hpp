// Task-State Segment layout.
//
// The architectural invariant HyperTap leans on (§VI-A2): TR always points
// at the TSS of the running task, and TSS.RSP0 — the privilege-level-0
// stack pointer loaded by the CPU on every user→kernel transition — is
// unique per thread, so it serves as a thread identifier.
//
// We model the 32-bit TSS layout where the ring-0 stack pointer lives at
// offset 4 (the historical ESP0 slot; the paper and this code call it RSP0).
#pragma once

#include "util/types.hpp"

namespace hvsim::arch {

inline constexpr u32 TSS_SIZE = 104;
/// Byte offset of the ring-0 stack pointer within the TSS.
inline constexpr u32 TSS_RSP0_OFFSET = 4;

}  // namespace hvsim::arch
