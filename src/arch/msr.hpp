// Model-Specific Registers relevant to fast-system-call interception
// (Fig. 3E): SYSENTER reads its target from IA32_SYSENTER_EIP, and MSRs can
// only be written through the privileged WRMSR instruction, which causes a
// WRMSR VM Exit when MSR-exiting is enabled.
#pragma once

#include <unordered_map>

#include "util/types.hpp"

namespace hvsim::arch {

/// The time-stamp counter is an MSR too: RDTSC reads it, and a privileged
/// WRMSR can rebase it (guests occasionally do, and evasive guests probe
/// whether the write-back round-trips at bare-metal latency).
inline constexpr u32 IA32_TIME_STAMP_COUNTER = 0x10;
inline constexpr u32 IA32_SYSENTER_CS = 0x174;
inline constexpr u32 IA32_SYSENTER_ESP = 0x175;
inline constexpr u32 IA32_SYSENTER_EIP = 0x176;

class MsrFile {
 public:
  u64 read(u32 index) const {
    const auto it = values_.find(index);
    return it == values_.end() ? 0 : it->second;
  }
  void write(u32 index, u64 value) { values_[index] = value; }

  bool operator==(const MsrFile&) const = default;

 private:
  std::unordered_map<u32, u64> values_;
};

}  // namespace hvsim::arch
