// Virtual CPU: register file, MSRs, local clock and exit statistics.
//
// With HAV, each vCPU occupies a physical core until the next VM Exit;
// per-vCPU local time plus a global minimum-time scheduling loop in
// hv::Machine gives a deterministic multiprocessor simulation.
#pragma once

#include <array>
#include <cstddef>

#include "arch/msr.hpp"
#include "util/types.hpp"

namespace hvsim::arch {

/// General-purpose register names (the subset syscall ABIs use).
enum class Gpr : u8 { RAX = 0, RBX, RCX, RDX, RSI, RDI, RBP, RSP_USER };
inline constexpr std::size_t kNumGpr = 8;

struct RegisterFile {
  /// Page Directory Base Register — the process identity invariant.
  u32 cr3 = 0;
  /// Task Register: GVA of the current TSS — the task identity invariant.
  Gva tr = 0;
  /// Kernel stack pointer of the running thread.
  u32 rsp = 0;
  /// Instruction pointer (tracked coarsely; used for syscall entry checks).
  u32 rip = 0;
  /// Current privilege level: 3 = user, 0 = kernel.
  u8 cpl = 3;
  /// Interrupt flag (IF). Cleared by cli / missing-irq-restore faults.
  bool interrupts_enabled = true;
  std::array<u32, kNumGpr> gpr{};

  u32 reg(Gpr r) const { return gpr[static_cast<std::size_t>(r)]; }
  void set_reg(Gpr r, u32 v) { gpr[static_cast<std::size_t>(r)] = v; }

  bool operator==(const RegisterFile&) const = default;
};

class Vcpu {
 public:
  explicit Vcpu(int id) : id_(id) {}

  int id() const { return id_; }

  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }

  MsrFile& msrs() { return msrs_; }
  const MsrFile& msrs() const { return msrs_; }

  /// Per-vCPU local simulated time.
  SimTime now() const { return local_time_; }
  void advance(SimTime ns) { local_time_ += ns; }
  void advance_cycles(Cycles c) { local_time_ += cycles_to_ns(c); }
  void set_now(SimTime t) { local_time_ = t; }

  u64 total_exits() const { return total_exits_; }
  void count_exit() { ++total_exits_; }

  // --- Guest-visible time-stamp counter -------------------------------
  // The TSC the guest reads is cycles(local clock) + a per-vCPU offset —
  // the VMCS TSC_OFFSET field in real VT-x. The hypervisor shifts the
  // offset to hide charged exit cost (TSC offsetting countermeasure); a
  // guest WRMSR to IA32_TIME_STAMP_COUNTER rebases it.

  /// Raw guest-visible counter value at the current local time.
  u64 read_tsc() const {
    const i64 v = static_cast<i64>(ns_to_cycles(local_time_)) + tsc_offset_;
    return v > 0 ? static_cast<u64>(v) : 0;
  }
  /// Emulate a guest WRMSR to the TSC: subsequent reads continue from
  /// `value`. Resets the monotonicity floor — the rebase is architectural.
  void write_tsc(u64 value) {
    tsc_offset_ = static_cast<i64>(value) -
                  static_cast<i64>(ns_to_cycles(local_time_));
    tsc_floor_ = value;
  }
  i64 tsc_offset() const { return tsc_offset_; }
  void set_tsc_offset(i64 cycles) { tsc_offset_ = cycles; }
  void adjust_tsc_offset(i64 delta_cycles) { tsc_offset_ += delta_cycles; }

  /// Last value an RDTSC instruction returned: offsetting/jitter must
  /// never let the counter appear to step backwards (a reversal would
  /// itself be a fingerprint). Maintained by the exit engine's RDTSC path.
  u64 tsc_floor() const { return tsc_floor_; }
  void set_tsc_floor(u64 v) { tsc_floor_ = v; }

 private:
  int id_;
  RegisterFile regs_;
  MsrFile msrs_;
  SimTime local_time_ = 0;
  u64 total_exits_ = 0;
  i64 tsc_offset_ = 0;  ///< cycles added to the local clock's cycle count
  u64 tsc_floor_ = 0;   ///< monotone clamp over returned RDTSC values
};

}  // namespace hvsim::arch
