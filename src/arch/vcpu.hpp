// Virtual CPU: register file, MSRs, local clock and exit statistics.
//
// With HAV, each vCPU occupies a physical core until the next VM Exit;
// per-vCPU local time plus a global minimum-time scheduling loop in
// hv::Machine gives a deterministic multiprocessor simulation.
#pragma once

#include <array>
#include <cstddef>

#include "arch/msr.hpp"
#include "util/types.hpp"

namespace hvsim::arch {

/// General-purpose register names (the subset syscall ABIs use).
enum class Gpr : u8 { RAX = 0, RBX, RCX, RDX, RSI, RDI, RBP, RSP_USER };
inline constexpr std::size_t kNumGpr = 8;

struct RegisterFile {
  /// Page Directory Base Register — the process identity invariant.
  u32 cr3 = 0;
  /// Task Register: GVA of the current TSS — the task identity invariant.
  Gva tr = 0;
  /// Kernel stack pointer of the running thread.
  u32 rsp = 0;
  /// Instruction pointer (tracked coarsely; used for syscall entry checks).
  u32 rip = 0;
  /// Current privilege level: 3 = user, 0 = kernel.
  u8 cpl = 3;
  /// Interrupt flag (IF). Cleared by cli / missing-irq-restore faults.
  bool interrupts_enabled = true;
  std::array<u32, kNumGpr> gpr{};

  u32 reg(Gpr r) const { return gpr[static_cast<std::size_t>(r)]; }
  void set_reg(Gpr r, u32 v) { gpr[static_cast<std::size_t>(r)] = v; }

  bool operator==(const RegisterFile&) const = default;
};

class Vcpu {
 public:
  explicit Vcpu(int id) : id_(id) {}

  int id() const { return id_; }

  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }

  MsrFile& msrs() { return msrs_; }
  const MsrFile& msrs() const { return msrs_; }

  /// Per-vCPU local simulated time.
  SimTime now() const { return local_time_; }
  void advance(SimTime ns) { local_time_ += ns; }
  void advance_cycles(Cycles c) { local_time_ += cycles_to_ns(c); }
  void set_now(SimTime t) { local_time_ = t; }

  u64 total_exits() const { return total_exits_; }
  void count_exit() { ++total_exits_; }

 private:
  int id_;
  RegisterFile regs_;
  MsrFile msrs_;
  SimTime local_time_ = 0;
  u64 total_exits_ = 0;
};

}  // namespace hvsim::arch
