#include "arch/phys_mem.hpp"

namespace hvsim::arch {

PhysMem::PhysMem(std::size_t bytes) : bytes_(bytes, 0) {
  if (bytes == 0 || (bytes & PAGE_MASK) != 0)
    throw std::invalid_argument("PhysMem size must be a nonzero page multiple");
}

void PhysMem::read_bytes(Gpa a, void* dst, std::size_t n) const {
  check(a, n);
  std::memcpy(dst, bytes_.data() + a, n);
}

void PhysMem::write_bytes(Gpa a, const void* src, std::size_t n) {
  check(a, n);
  std::memcpy(bytes_.data() + a, src, n);
}

void PhysMem::zero_page(Gpa page_aligned) {
  check(page_aligned, PAGE_SIZE);
  std::memset(bytes_.data() + page_aligned, 0, PAGE_SIZE);
}

}  // namespace hvsim::arch
