// Vcpu is header-only today; this TU anchors the header for the library
// build and will host out-of-line additions as the model grows.
#include "arch/vcpu.hpp"
