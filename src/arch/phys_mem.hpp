// Guest physical memory: a flat, bounds-checked byte array.
//
// Every guest-visible data structure in the simulation — page directories,
// page tables, TSS segments, task_structs, thread_infos, kernel stacks and
// the system-call table — lives in this array as real bytes. Introspection
// tools (VMI), rootkits and HyperTap's derivation code all operate on the
// same bytes, which is what makes semantic-gap attacks meaningful.
#pragma once

#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace hvsim::arch {

class PhysMem {
 public:
  /// Size must be page-aligned.
  explicit PhysMem(std::size_t bytes);

  std::size_t size() const { return bytes_.size(); }
  u32 num_pages() const { return static_cast<u32>(bytes_.size() >> PAGE_SHIFT); }

  u8 rd8(Gpa a) const { return bytes_.at(check(a, 1)); }
  u16 rd16(Gpa a) const { return rd<u16>(a); }
  u32 rd32(Gpa a) const { return rd<u32>(a); }
  u64 rd64(Gpa a) const { return rd<u64>(a); }

  void wr8(Gpa a, u8 v) { bytes_.at(check(a, 1)) = v; }
  void wr16(Gpa a, u16 v) { wr<u16>(a, v); }
  void wr32(Gpa a, u32 v) { wr<u32>(a, v); }
  void wr64(Gpa a, u64 v) { wr<u64>(a, v); }

  void read_bytes(Gpa a, void* dst, std::size_t n) const;
  void write_bytes(Gpa a, const void* src, std::size_t n);

  /// Zero a whole physical page (used when the guest frees a frame, so that
  /// stale page-directory base addresses fail validity tests).
  void zero_page(Gpa page_aligned);

  std::span<const u8> bytes() const { return bytes_; }

 private:
  template <typename T>
  T rd(Gpa a) const {
    T v;
    std::memcpy(&v, bytes_.data() + check(a, sizeof(T)), sizeof(T));
    return v;
  }
  template <typename T>
  void wr(Gpa a, T v) {
    std::memcpy(bytes_.data() + check(a, sizeof(T)), &v, sizeof(T));
  }

  std::size_t check(Gpa a, std::size_t n) const {
    if (static_cast<std::size_t>(a) + n > bytes_.size())
      throw std::out_of_range("guest-physical access out of range");
    return a;
  }

  std::vector<u8> bytes_;
};

}  // namespace hvsim::arch
