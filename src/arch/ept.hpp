// Extended Page Tables (EPT) model.
//
// Guest-physical memory is backed 1:1 by PhysMem; what EPT contributes in
// this simulation is the per-page permission set (read / write / execute)
// that the hypervisor manipulates to receive EPT_VIOLATION VM Exits — the
// mechanism behind thread-switch interception (write-protected TSS pages,
// Fig. 3B), fast-system-call interception (execute-protected entry page,
// Fig. 3E), and MMIO trapping.
#pragma once

#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace hvsim::arch {

enum class Access : u8 { kRead = 0, kWrite = 1, kExecute = 2 };

const char* to_string(Access a);

struct EptPerm {
  bool r = true;
  bool w = true;
  bool x = true;

  bool allows(Access a) const {
    switch (a) {
      case Access::kRead: return r;
      case Access::kWrite: return w;
      case Access::kExecute: return x;
    }
    return false;
  }
  bool operator==(const EptPerm&) const = default;
};

class Ept {
 public:
  explicit Ept(u32 num_pages) : perms_(num_pages) {}

  // check() bounds-validates, so plain indexing below is safe (and keeps
  // GCC from flagging the deliberately-throwing test paths).
  EptPerm get(Gpa gpa) const { return perms_[page_number(check(gpa))]; }
  void set(Gpa gpa, EptPerm p) { perms_[page_number(check(gpa))] = p; }

  /// Convenience: write-protect / execute-protect the page containing gpa.
  void write_protect(Gpa gpa, bool protect);
  void exec_protect(Gpa gpa, bool protect);

  bool check_access(Gpa gpa, Access a) const { return get(gpa).allows(a); }

  u32 num_pages() const { return static_cast<u32>(perms_.size()); }

 private:
  Gpa check(Gpa gpa) const {
    if (page_number(gpa) >= perms_.size())
      throw std::out_of_range("EPT access beyond guest-physical range");
    return gpa;
  }
  std::vector<EptPerm> perms_;
};

}  // namespace hvsim::arch
