// Trusted OS-state derivation (§IV-B, §VII-C).
//
// Architectural invariants are the root of trust: derivation always starts
// from register state (TR, CR3, the RSP0 captured at a thread-switch
// event), never from OS-managed entry points like the task list head.
//
//   TR ──► TSS ──► RSP0 ──► thread_info (stack-base mask) ──► task_struct
//
// From the task_struct we read uid/euid/ppid/comm — values an attacker can
// fake for *list walkers* by unlinking the structure, but not for this
// derivation, because the structure is found through the hardware's own
// idea of "the running thread".
#pragma once

#include <optional>
#include <string>

#include "hv/hypervisor.hpp"
#include "os/layout.hpp"

namespace hypertap {

using namespace hvsim;

/// A view of one guest task, derived from hardware state.
struct GuestTaskView {
  bool valid = false;
  Gva task_gva = 0;
  u32 pid = 0;
  u32 uid = 0;
  u32 euid = 0;
  u32 ppid = 0;
  u32 state = 0;
  u32 flags = 0;
  u32 exe_id = 0;
  u32 pdba = 0;
  Gva parent_gva = 0;
  std::string comm;
};

class OsStateDerivation {
 public:
  OsStateDerivation(const hv::Hypervisor& hv, os::OsLayout layout)
      : hv_(hv), layout_(layout) {}

  const os::OsLayout& layout() const { return layout_; }

  /// The running task of `vcpu`, via TR -> TSS.RSP0.
  GuestTaskView current_task(int vcpu) const;

  /// The task owning kernel stack top `rsp0` (e.g. the value captured by a
  /// thread-switch event).
  GuestTaskView task_from_rsp0(int vcpu, u32 rsp0) const;

  /// Decode a task_struct at `task_gva`, reading through `pdba`.
  GuestTaskView read_task(Gpa pdba, Gva task_gva) const;

  /// uid of the parent of `t` (follows t.parent_gva).
  std::optional<u32> parent_uid(Gpa pdba, const GuestTaskView& t) const;

 private:
  u32 rd32(Gpa pdba, Gva gva) const;

  const hv::Hypervisor& hv_;
  os::OsLayout layout_;
};

}  // namespace hypertap
