// EventMultiplexer is header-only; this TU anchors it in the library.
#include "core/event_multiplexer.hpp"
