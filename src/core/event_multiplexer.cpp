#include "core/event_multiplexer.hpp"

namespace hypertap {

// Precondition: r.breaker.allow(now) returned true (call admitted).
bool EventMultiplexer::supervised_call(Registration& r, const Event* e,
                                       SimTime now, AuditContext& ctx) {
  try {
    // Re-admission (half-open probe) with losses outstanding: let the
    // auditor resynchronize from trusted state before it judges anything.
    if (r.missed_while_open > 0) {
      const u64 missed = r.missed_while_open;
      r.missed_while_open = 0;
      ++r.resyncs;
      r.auditor->on_gap(missed, ctx);
    }
    // In-band loss marker from an upstream channel (ring overflow).
    if (e != nullptr && e->gap_before > 0) {
      ++r.resyncs;
      r.auditor->on_gap(e->gap_before, ctx);
    }
    if (e != nullptr) {
      r.auditor->on_event(*e, ctx);
    } else {
      r.auditor->on_timer(now, ctx);
    }
    if (r.breaker.on_success()) {
      ctx.alarms().raise(Alarm{now, "monitor", "auditor-recovered",
                               r.auditor->name() +
                                   " probe succeeded; breaker closed",
                               -1, 0});
    }
    return true;
  } catch (const std::exception& ex) {
    record_fault(r, ex.what(), now, ctx);
    return false;
  } catch (...) {
    record_fault(r, "non-standard exception", now, ctx);
    return false;
  }
}

void EventMultiplexer::record_fault(Registration& r, const char* what,
                                    SimTime now, AuditContext& ctx) {
  r.last_fault = what;
  ++r.faults;
  ++total_faults_;
  if (r.breaker.on_failure(now)) {
    ctx.alarms().raise(Alarm{now, "monitor", "auditor-quarantined",
                             r.auditor->name() + ": " + r.last_fault, -1, 0});
  }
}

void EventMultiplexer::deliver(arch::Vcpu& vcpu, const Event& e,
                               AuditContext& ctx) {
  if (rhc_ != nullptr && ++sample_counter_ >= rhc_->config().sample_every) {
    sample_counter_ = 0;
    rhc_->on_sample(e.time);
  }
  const EventMask bit = event_bit(e.kind);
  for (auto& r : regs_) {
    if ((r.auditor->subscriptions() & bit) == 0) continue;
    if (cfg_.supervise && !r.breaker.allow(e.time)) {
      // Quarantined: suppress (and count — the probe's on_gap replays it).
      ++r.missed_while_open;
      ++r.missed_total;
      ++total_suppressed_;
      continue;
    }
    ++r.delivered;
    ++total_delivered_;
    if (r.auditor->blocking()) {
      vcpu.advance_cycles(r.auditor->audit_cost_cycles());
    } else {
      vcpu.advance_cycles(cfg_.enqueue_cycles);
      r.container_cycles += r.auditor->audit_cost_cycles();
    }
    if (!cfg_.supervise) {
      r.auditor->on_event(e, ctx);
      continue;
    }
    // Fast path: healthy auditor, nothing to replay. The try/catch costs
    // nothing until a throw; the cold fault/recovery paths stay
    // out-of-line in supervised_call/record_fault.
    if (r.breaker.state() == resilience::BreakerState::kClosed &&
        r.missed_while_open == 0 && e.gap_before == 0) [[likely]] {
      try {
        r.auditor->on_event(e, ctx);
        r.breaker.on_success();  // closed stays closed; resets the streak
      } catch (const std::exception& ex) {
        record_fault(r, ex.what(), e.time, ctx);
      } catch (...) {
        record_fault(r, "non-standard exception", e.time, ctx);
      }
      continue;
    }
    supervised_call(r, &e, e.time, ctx);
  }
}

bool EventMultiplexer::dispatch_timer(Auditor* a, SimTime now,
                                      AuditContext& ctx) {
  for (auto& r : regs_) {
    if (r.auditor != a) continue;
    if (!cfg_.supervise) {
      a->on_timer(now, ctx);
      return true;
    }
    // A quarantined auditor's timer is suppressed, but the tick still
    // drives the open -> half-open transition so auditors that are mostly
    // timer-driven (GOSHD) can be probed and recover without waiting for
    // a subscribed event.
    if (!r.breaker.allow(now)) return false;
    return supervised_call(r, nullptr, now, ctx);
  }
  // Not registered (racing removal): drop the tick.
  return false;
}

}  // namespace hypertap
