#include "core/event_multiplexer.hpp"

#include <algorithm>

#include "journal/journal.hpp"

namespace hypertap {

void EventMultiplexer::set_telemetry(telemetry::Telemetry* t, int vm_id) {
  telemetry_ = t;
  vm_id_ = vm_id;
  if (t == nullptr) {
    tracer_ = nullptr;
    audit_hist_ = nullptr;
    fanout_hist_ = nullptr;
    dup_counter_ = nullptr;
    corrupt_counter_ = nullptr;
    gap_counter_ = nullptr;
    for (auto& r : regs_) r.tel = {};
    return;
  }
  tracer_ = &t->tracer;
  const std::string vm = std::to_string(vm_id);
  audit_hist_ =
      t->registry.histogram("ht_stage_cycles", {{"stage", "audit"}, {"vm", vm}});
  fanout_hist_ = t->registry.histogram("ht_stage_cycles",
                                       {{"stage", "fanout"}, {"vm", vm}});
  dup_counter_ =
      t->registry.counter("ht_duplicates_suppressed_total", {{"vm", vm}});
  corrupt_counter_ =
      t->registry.counter("ht_corrupted_dropped_total", {{"vm", vm}});
  gap_counter_ = t->registry.counter("ht_gaps_signaled_total", {{"vm", vm}});
  for (auto& r : regs_) wire_reg_telemetry(r);
}

void EventMultiplexer::wire_reg_telemetry(Registration& r) {
  if (telemetry_ == nullptr) return;
  auto& reg = telemetry_->registry;
  const telemetry::Labels l{{"auditor", r.auditor->name()},
                            {"vm", std::to_string(vm_id_)}};
  r.tel.delivered = reg.counter("ht_audit_delivered_total", l);
  r.tel.faults = reg.counter("ht_audit_faults_total", l);
  r.tel.suppressed = reg.counter("ht_audit_suppressed_total", l);
  r.tel.resyncs = reg.counter("ht_audit_resyncs_total", l);
  r.tel.quarantine_enter = reg.counter("ht_quarantine_enter_total", l);
  r.tel.quarantine_exit = reg.counter("ht_quarantine_exit_total", l);
  r.tel.shed = reg.counter("ht_audit_shed_total", l);
  r.tel.container_cycles = reg.gauge("ht_container_cycles", l);
}

// Precondition: r.breaker.allow(now) returned true (call admitted).
bool EventMultiplexer::supervised_call(Registration& r, const Event* e,
                                       SimTime now, AuditContext& ctx) {
  try {
    // Re-admission (half-open probe) with losses outstanding: let the
    // auditor resynchronize from trusted state before it judges anything.
    if (r.missed_while_open > 0) {
      const u64 missed = r.missed_while_open;
      r.missed_while_open = 0;
      ++r.resyncs;
      HT_COUNT(r.tel.resyncs);
      r.auditor->on_gap(missed, ctx);
    }
    // Ladder-shed events since the last delivery: one consolidated gap so
    // the auditor resynchronizes instead of trusting a holey stream.
    if (r.shed_pending > 0) {
      const u64 shed = r.shed_pending;
      r.shed_pending = 0;
      ++r.resyncs;
      HT_COUNT(r.tel.resyncs);
      r.auditor->on_gap(shed, ctx);
    }
    // In-band loss marker from an upstream channel (ring overflow).
    if (e != nullptr && e->gap_before > 0) {
      ++r.resyncs;
      HT_COUNT(r.tel.resyncs);
      r.auditor->on_gap(e->gap_before, ctx);
    }
    if (e != nullptr) {
      r.auditor->on_event(*e, ctx);
    } else {
      r.auditor->on_timer(now, ctx);
    }
    if (r.breaker.on_success()) {
      HT_COUNT(r.tel.quarantine_exit);
      ctx.alarms().raise(Alarm{now, "monitor", "auditor-recovered",
                               r.auditor->name() +
                                   " probe succeeded; breaker closed",
                               -1, 0});
    }
    return true;
  } catch (const std::exception& ex) {
    record_fault(r, ex.what(), now, ctx);
    return false;
  } catch (...) {
    record_fault(r, "non-standard exception", now, ctx);
    return false;
  }
}

void EventMultiplexer::record_fault(Registration& r, const char* what,
                                    SimTime now, AuditContext& ctx) {
  r.last_fault = what;
  ++r.faults;
  ++total_faults_;
  HT_COUNT(r.tel.faults);
  if (r.breaker.on_failure(now)) {
    HT_COUNT(r.tel.quarantine_enter);
    HT_INSTANT(tracer_, vm_id_, telemetry::kMonitorTrack, "quarantine",
               "supervision", now, r.auditor->name());
    ctx.alarms().raise(Alarm{now, "monitor", "auditor-quarantined",
                             r.auditor->name() + ": " + r.last_fault, -1, 0});
  }
}

void EventMultiplexer::deliver(arch::Vcpu& vcpu, const Event& e,
                               AuditContext& ctx) {
  if (rhc_ != nullptr && ++sample_counter_ >= rhc_->config().sample_every) {
    sample_counter_ = 0;
    rhc_->on_sample(e.time);
  }
  if (guard_.config().enabled) {
    ready_.clear();
    guard_.ingest(e, ready_);
    // Mirror the guard's counters to telemetry as deltas (the guard stays
    // telemetry-free so it is unit-testable in isolation).
    HT_COUNT_N(dup_counter_,
               guard_.duplicates_suppressed() - guard_dups_reported_);
    HT_COUNT_N(corrupt_counter_,
               guard_.corrupted_dropped() - guard_corrupt_reported_);
    HT_COUNT_N(gap_counter_, guard_.gaps_signaled() - guard_gaps_reported_);
    guard_dups_reported_ = guard_.duplicates_suppressed();
    guard_corrupt_reported_ = guard_.corrupted_dropped();
    guard_gaps_reported_ = guard_.gaps_signaled();
    for (const Event& r : ready_) deliver_one(vcpu, r, ctx);
    return;
  }
  // Guard off: still refuse duplicate/stale sequence numbers — an event
  // audited twice is as misleading as one never audited.
  if (cfg_.dedup && e.seq != 0) {
    if (e.seq <= last_seq_seen_) {
      ++duplicates_suppressed_;
      HT_COUNT(dup_counter_);
      return;
    }
    last_seq_seen_ = e.seq;
  }
  deliver_one(vcpu, e, ctx);
}

void EventMultiplexer::deliver_batch(arch::Vcpu& vcpu, const Event* events,
                                     std::size_t n, AuditContext& ctx,
                                     SimTime* cursor) {
  for (std::size_t i = 0; i < n; ++i) {
    if (cursor != nullptr) *cursor = events[i].time;
    deliver(vcpu, events[i], ctx);
  }
}

void EventMultiplexer::flush_delivery(arch::Vcpu& vcpu, AuditContext& ctx) {
  if (!guard_.config().enabled) return;
  ready_.clear();
  guard_.drain(ready_);
  HT_COUNT_N(gap_counter_, guard_.gaps_signaled() - guard_gaps_reported_);
  guard_gaps_reported_ = guard_.gaps_signaled();
  for (const Event& r : ready_) deliver_one(vcpu, r, ctx);
}

void EventMultiplexer::deliver_one(arch::Vcpu& vcpu, const Event& e,
                                   AuditContext& ctx) {
  const EventMask bit = event_bit(e.kind);
  backlog_drain(e.time);
  for (auto& r : regs_) {
    if ((r.auditor->subscriptions() & bit) == 0) continue;
    if (cfg_.supervise && !r.breaker.allow(e.time)) {
      // Quarantined: suppress (and count — the probe's on_gap replays it).
      ++r.missed_while_open;
      ++r.missed_total;
      ++total_suppressed_;
      HT_COUNT(r.tel.suppressed);
      continue;
    }
    // Degradation ladder: shed non-critical audits under overload. Shed
    // events never touch the guest (no enqueue cost) or the backlog model.
    if (shed_event(r)) continue;
    ++r.delivered;
    ++total_delivered_;
    HT_COUNT(r.tel.delivered);
    HT_OBSERVE(audit_hist_, r.auditor->audit_cost_cycles());
    if (r.auditor->blocking()) {
      vcpu.advance_cycles(r.auditor->audit_cost_cycles());
    } else {
      vcpu.advance_cycles(cfg_.enqueue_cycles);
      r.container_cycles += r.auditor->audit_cost_cycles();
      HT_GAUGE_SET(r.tel.container_cycles,
                   static_cast<double>(r.container_cycles));
      // Modeled container backlog: every admitted non-blocking audit adds
      // its cost; the lazy drain above already credited elapsed capacity.
      if (backlog_enabled()) {
        backlog_cycles_ += static_cast<double>(r.auditor->audit_cost_cycles());
      }
    }
    // The audit span nests under the enclosing forward/exit spans on this
    // vCPU track; its duration is the guest-synchronous share (blocking
    // auditors stretch it, non-blocking ones only the enqueue cost).
    const auto span =
        HT_SPAN_BEGIN_ARG(tracer_, vm_id_, vcpu.id(), "audit", "pipeline",
                          e.time, r.auditor->name());
    if (!cfg_.supervise) {
      if (r.shed_pending > 0) {
        const u64 shed = r.shed_pending;
        r.shed_pending = 0;
        r.auditor->on_gap(shed, ctx);
      }
      r.auditor->on_event(e, ctx);
      HT_SPAN_END(tracer_, span, vcpu.now());
      continue;
    }
    // Fast path: healthy auditor, nothing to replay. The try/catch costs
    // nothing until a throw; the cold fault/recovery paths stay
    // out-of-line in supervised_call/record_fault.
    if (r.breaker.state() == resilience::BreakerState::kClosed &&
        r.missed_while_open == 0 && r.shed_pending == 0 &&
        e.gap_before == 0) [[likely]] {
      try {
        r.auditor->on_event(e, ctx);
        r.breaker.on_success();  // closed stays closed; resets the streak
      } catch (const std::exception& ex) {
        record_fault(r, ex.what(), e.time, ctx);
      } catch (...) {
        record_fault(r, "non-standard exception", e.time, ctx);
      }
      HT_SPAN_END(tracer_, span, vcpu.now());
      continue;
    }
    supervised_call(r, &e, e.time, ctx);
    HT_SPAN_END(tracer_, span, vcpu.now());
  }
  HT_OBSERVE(fanout_hist_,
             static_cast<u64>(std::max<SimTime>(0, vcpu.now() - e.time)));
  if (backlog_enabled()) backlog_edges(e.time);
}

bool EventMultiplexer::dispatch_timer(Auditor* a, SimTime now,
                                      AuditContext& ctx) {
  for (auto& r : regs_) {
    if (r.auditor != a) continue;
    // Invariant-only rung: non-critical periodic work is shed too — and
    // BEFORE the journal append, so a replay of the journal reproduces the
    // suppression instead of re-dispatching a tick the recording skipped.
    // With a sampling seed, a residual 1/sample_every_ trickle of ticks
    // survives (randomized-audit hardening: no rung is fully dark).
    if (mode_ == AuditMode::kInvariantOnly && !a->blocking() &&
        !a->architectural() &&
        (sampling_seed_ == 0 || sampling_rng_.below(sample_every_) != 0)) {
      ++r.shed;
      ++r.shed_pending;
      ++total_shed_;
      HT_COUNT(r.tel.shed);
      return false;
    }
    // Journal the tick before any breaker decision: the replayer drives
    // the same tick through the same breaker logic, so suppression is
    // reproduced rather than recorded.
    if (journal_ != nullptr) journal_->append_timer(now, a->name());
    if (!cfg_.supervise) {
      a->on_timer(now, ctx);
      return true;
    }
    // A quarantined auditor's timer is suppressed, but the tick still
    // drives the open -> half-open transition so auditors that are mostly
    // timer-driven (GOSHD) can be probed and recover without waiting for
    // a subscribed event.
    if (!r.breaker.allow(now)) return false;
    return supervised_call(r, nullptr, now, ctx);
  }
  // Not registered (racing removal): drop the tick.
  return false;
}

}  // namespace hypertap
