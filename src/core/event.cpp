#include "core/event.hpp"

#include <sstream>

#include "os/syscalls.hpp"

namespace hypertap {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kProcessSwitch: return "process-switch";
    case EventKind::kThreadSwitch: return "thread-switch";
    case EventKind::kSyscall: return "syscall";
    case EventKind::kIo: return "io";
    case EventKind::kMmio: return "mmio";
    case EventKind::kExternalInterrupt: return "external-interrupt";
    case EventKind::kMsrWrite: return "msr-write";
    case EventKind::kApicAccess: return "apic-access";
    case EventKind::kMemAccess: return "mem-access";
    case EventKind::kRdtsc: return "rdtsc";
    case EventKind::kCount: break;
  }
  return "?";
}

u32 Event::payload_checksum() const {
  u32 h = 2166136261u;  // FNV-1a
  const auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<u8>(v >> (8 * i));
      h *= 16777619u;
    }
  };
  mix(static_cast<u64>(kind));
  mix(static_cast<u64>(reason));
  mix(static_cast<u64>(static_cast<u32>(vcpu)));
  mix(static_cast<u64>(time));
  mix(seq);
  mix(reg_cr3);
  mix(reg_tr);
  mix(reg_rsp);
  mix(cr3_old);
  mix(cr3_new);
  mix(rsp0);
  mix(sc_nr);
  for (u32 a : sc_args) mix(a);
  mix(sc_fast ? 1 : 0);
  mix(io_port);
  mix(io_is_write ? 1 : 0);
  mix(io_value);
  mix(msr_index);
  mix(msr_value);
  mix(int_vector);
  mix(gva);
  mix(gpa);
  mix(static_cast<u64>(access));
  return h;
}

std::string Event::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " vcpu" << vcpu << " t=" << time;
  switch (kind) {
    case EventKind::kProcessSwitch:
      os << " cr3 " << std::hex << cr3_old << "->" << cr3_new;
      break;
    case EventKind::kThreadSwitch:
      os << " rsp0=" << std::hex << rsp0;
      break;
    case EventKind::kSyscall:
      os << " " << os::syscall_name(sc_nr) << "(" << sc_args[0] << ", "
         << sc_args[1] << ", " << sc_args[2] << ")"
         << (sc_fast ? " [sysenter]" : " [int80]");
      break;
    case EventKind::kIo:
      os << (io_is_write ? " out " : " in ") << std::hex << io_port
         << " val=" << io_value;
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace hypertap
