#include "core/event.hpp"

#include <sstream>

#include "os/syscalls.hpp"

namespace hypertap {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kProcessSwitch: return "process-switch";
    case EventKind::kThreadSwitch: return "thread-switch";
    case EventKind::kSyscall: return "syscall";
    case EventKind::kIo: return "io";
    case EventKind::kMmio: return "mmio";
    case EventKind::kExternalInterrupt: return "external-interrupt";
    case EventKind::kMsrWrite: return "msr-write";
    case EventKind::kApicAccess: return "apic-access";
    case EventKind::kMemAccess: return "mem-access";
    case EventKind::kCount: break;
  }
  return "?";
}

std::string Event::describe() const {
  std::ostringstream os;
  os << to_string(kind) << " vcpu" << vcpu << " t=" << time;
  switch (kind) {
    case EventKind::kProcessSwitch:
      os << " cr3 " << std::hex << cr3_old << "->" << cr3_new;
      break;
    case EventKind::kThreadSwitch:
      os << " rsp0=" << std::hex << rsp0;
      break;
    case EventKind::kSyscall:
      os << " " << os::syscall_name(sc_nr) << "(" << sc_args[0] << ", "
         << sc_args[1] << ", " << sc_args[2] << ")"
         << (sc_fast ? " [sysenter]" : " [int80]");
      break;
    case EventKind::kIo:
      os << (io_is_write ? " out " : " in ") << std::hex << io_port
         << " val=" << io_value;
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace hypertap
