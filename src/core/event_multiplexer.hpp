// Event Multiplexer (§V-C): buffers events from the Event Forwarder and
// delivers them to registered auditors running in auditing containers.
//
// Unified logging in one place: one VM Exit is decoded once and fanned out
// to every subscribed auditor. Non-blocking delivery charges the guest
// only the tiny enqueue cost; the audit itself runs on container CPU,
// tracked per auditor. Blocking auditors execute before the guest resumes
// and their audit cost is charged to the vCPU (the trade-off Fig. 6's
// spamming attack motivates).
//
// The multiplexer also supervises the auditors (monitor-side fault
// tolerance): an auditor exception is absorbed here — never unwinding into
// the exit path — counted per registration, and after a run of consecutive
// failures the auditor is quarantined behind a circuit breaker. While open,
// its subscribed events are suppressed (and counted); after a cooldown a
// half-open probe re-admits it, first replaying the loss through
// Auditor::on_gap so the auditor resynchronizes from trusted state before
// judging new events. Quarantine entry/exit raise "monitor"-sourced alarms
// through the AlarmSink, so monitor health is observable in the same
// channel as guest health.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "arch/vcpu.hpp"
#include "core/auditor.hpp"
#include "core/delivery_guard.hpp"
#include "core/event.hpp"
#include "core/rhc.hpp"
#include "resilience/circuit_breaker.hpp"
#include "telemetry/telemetry.hpp"

namespace hypertap {

namespace journal {
class JournalWriter;
}

class EventMultiplexer {
 public:
  struct Config {
    /// Per-auditor non-blocking enqueue cost, charged to the guest.
    Cycles enqueue_cycles = 60;
    /// Catch auditor exceptions and quarantine repeat offenders. Off =
    /// legacy fail-fast behaviour (exceptions unwind to the caller).
    bool supervise = true;
    resilience::CircuitBreaker::Config breaker;
    /// Suppress events whose sequence number was already delivered (a
    /// duplicated or stale redelivery must not be audited twice). Cheap:
    /// one comparison against the high-water mark per sequenced event.
    bool dedup = true;
    /// Full ingress hardening (checksum validation + bounded reorder
    /// buffer + gap synthesis). Disabled by default: it buys nothing on a
    /// clean in-process channel and the chaos benches measure exactly
    /// what it buys on a faulty one.
    DeliveryGuard::Config guard;
  };

  explicit EventMultiplexer(Config cfg) : cfg_(cfg), guard_(cfg.guard) {}
  EventMultiplexer() : EventMultiplexer(Config{}) {}

  struct Registration {
    Auditor* auditor = nullptr;
    u64 delivered = 0;
    /// Container CPU spent auditing (non-blocking analysis time).
    Cycles container_cycles = 0;

    // ---- Supervision state (monitor-side fault tolerance) ----
    resilience::CircuitBreaker breaker;
    u64 faults = 0;             ///< exceptions absorbed from this auditor
    u64 missed_while_open = 0;  ///< subscribed events suppressed right now
    u64 missed_total = 0;       ///< lifetime suppressed events
    u64 resyncs = 0;            ///< on_gap notifications delivered
    std::string last_fault;     ///< what() of the most recent exception

    /// Cached registry series (nullptr when telemetry is unwired) —
    /// resolved once per registration, never looked up on the hot path.
    /// This is what makes delivered / container_cycles / the supervision
    /// counters externally queryable through the registry.
    struct Tel {
      telemetry::Counter* delivered = nullptr;
      telemetry::Counter* faults = nullptr;
      telemetry::Counter* suppressed = nullptr;
      telemetry::Counter* resyncs = nullptr;
      telemetry::Counter* quarantine_enter = nullptr;
      telemetry::Counter* quarantine_exit = nullptr;
      telemetry::Gauge* container_cycles = nullptr;
    } tel;
  };

  void register_auditor(Auditor* a, AuditContext& ctx) {
    Registration r;
    r.auditor = a;
    r.breaker = resilience::CircuitBreaker(cfg_.breaker);
    regs_.push_back(std::move(r));
    wire_reg_telemetry(regs_.back());
    a->on_attach(ctx);
  }

  void unregister_auditor(const Auditor* a) {
    std::erase_if(regs_, [a](const Registration& r) { return r.auditor == a; });
  }

  /// Union of all subscriptions — what the Event Forwarder must capture.
  EventMask combined_mask() const {
    EventMask m = 0;
    for (const auto& r : regs_) m |= r.auditor->subscriptions();
    return m;
  }

  void set_rhc(Rhc* rhc) { rhc_ = rhc; }

  /// Fan an event out (called by the Event Forwarder on the exit path).
  /// Runs the ingress hardening first when configured: checksum-validated,
  /// deduplicated, re-ordered events fan out; corrupted ones are dropped
  /// and sequence holes surface through Auditor::on_gap.
  void deliver(arch::Vcpu& vcpu, const Event& e, AuditContext& ctx);

  /// Release everything the reorder buffer still holds (end of run or
  /// explicit pipeline drain); holes become gap notifications.
  void flush_delivery(arch::Vcpu& vcpu, AuditContext& ctx);

  /// Supervised periodic-callback dispatch (the HyperTap timer chain).
  /// Returns false when the tick was suppressed by an open breaker.
  bool dispatch_timer(Auditor* a, SimTime now, AuditContext& ctx);

  /// Is this auditor currently quarantined (breaker not closed)?
  bool quarantined(const Auditor* a) const {
    const Registration* r = find(a);
    return r != nullptr &&
           r->breaker.state() != resilience::BreakerState::kClosed;
  }

  /// Drive RHC sampling for exits that decode to no subscribed event (the
  /// sample stream covers raw exits, not only decoded events).
  void sample_raw_exit(SimTime t) {
    if (rhc_ != nullptr && ++sample_counter_ >= rhc_->config().sample_every) {
      sample_counter_ = 0;
      rhc_->on_sample(t);
    }
  }

  const std::vector<Registration>& registrations() const { return regs_; }
  const Registration* find(const Auditor* a) const {
    for (const auto& r : regs_)
      if (r.auditor == a) return &r;
    return nullptr;
  }
  u64 total_delivered() const { return total_delivered_; }
  u64 total_faults() const { return total_faults_; }
  u64 total_suppressed() const { return total_suppressed_; }
  u64 duplicates_suppressed() const {
    return duplicates_suppressed_ + guard_.duplicates_suppressed();
  }
  const DeliveryGuard& guard() const { return guard_; }

  /// Mirror every auditor timer tick into the durable journal (the
  /// Replayer re-dispatches them so timer-driven verdicts — GOSHD — are
  /// reproducible). nullptr detaches.
  void set_journal(journal::JournalWriter* w) { journal_ = w; }

  /// Wire the multiplexer (and every already-registered auditor) to a
  /// telemetry bundle: per-auditor counters/gauges, per-stage cycle
  /// histograms and "audit" spans. Auditors registered afterwards are
  /// wired as they arrive.
  void set_telemetry(telemetry::Telemetry* t, int vm_id);

 private:
  /// Post-hardening fan-out of one event to every subscribed auditor.
  void deliver_one(arch::Vcpu& vcpu, const Event& e, AuditContext& ctx);
  /// One supervised call into the auditor (event when `e` != nullptr,
  /// timer tick otherwise). Precondition: the breaker admitted the call.
  /// Returns true when the call completed normally.
  bool supervised_call(Registration& r, const Event* e, SimTime now,
                       AuditContext& ctx);
  /// Cold path shared by deliver()'s fast path and supervised_call():
  /// count the absorbed exception and quarantine on threshold.
  void record_fault(Registration& r, const char* what, SimTime now,
                    AuditContext& ctx);
  void wire_reg_telemetry(Registration& r);

  Config cfg_;
  std::vector<Registration> regs_;
  Rhc* rhc_ = nullptr;
  DeliveryGuard guard_;
  journal::JournalWriter* journal_ = nullptr;
  std::vector<Event> ready_;  ///< reused guard-output buffer
  u32 sample_counter_ = 0;
  u64 last_seq_seen_ = 0;  ///< dedup high-water mark (guard-off path)
  u64 total_delivered_ = 0;
  u64 total_faults_ = 0;
  u64 total_suppressed_ = 0;
  u64 duplicates_suppressed_ = 0;

  // Telemetry (nullptr when unwired).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  int vm_id_ = 0;
  telemetry::Histogram* audit_hist_ = nullptr;   ///< per-event audit cycles
  telemetry::Histogram* fanout_hist_ = nullptr;  ///< guest-synchronous fan-out
  telemetry::Counter* dup_counter_ = nullptr;
  telemetry::Counter* corrupt_counter_ = nullptr;
  telemetry::Counter* gap_counter_ = nullptr;
  u64 guard_dups_reported_ = 0;  ///< guard stats already mirrored to telemetry
  u64 guard_corrupt_reported_ = 0;
  u64 guard_gaps_reported_ = 0;
};

}  // namespace hypertap
