// Event Multiplexer (§V-C): buffers events from the Event Forwarder and
// delivers them to registered auditors running in auditing containers.
//
// Unified logging in one place: one VM Exit is decoded once and fanned out
// to every subscribed auditor. Non-blocking delivery charges the guest
// only the tiny enqueue cost; the audit itself runs on container CPU,
// tracked per auditor. Blocking auditors execute before the guest resumes
// and their audit cost is charged to the vCPU (the trade-off Fig. 6's
// spamming attack motivates).
#pragma once

#include <memory>
#include <vector>

#include "arch/vcpu.hpp"
#include "core/auditor.hpp"
#include "core/event.hpp"
#include "core/rhc.hpp"

namespace hypertap {

class EventMultiplexer {
 public:
  struct Config {
    /// Per-auditor non-blocking enqueue cost, charged to the guest.
    Cycles enqueue_cycles = 60;
  };

  explicit EventMultiplexer(Config cfg) : cfg_(cfg) {}
  EventMultiplexer() : EventMultiplexer(Config{}) {}

  struct Registration {
    Auditor* auditor = nullptr;
    u64 delivered = 0;
    /// Container CPU spent auditing (non-blocking analysis time).
    Cycles container_cycles = 0;
  };

  void register_auditor(Auditor* a, AuditContext& ctx) {
    regs_.push_back(Registration{a});
    a->on_attach(ctx);
  }

  void unregister_auditor(const Auditor* a) {
    std::erase_if(regs_, [a](const Registration& r) { return r.auditor == a; });
  }

  /// Union of all subscriptions — what the Event Forwarder must capture.
  EventMask combined_mask() const {
    EventMask m = 0;
    for (const auto& r : regs_) m |= r.auditor->subscriptions();
    return m;
  }

  void set_rhc(Rhc* rhc) { rhc_ = rhc; }

  /// Fan an event out (called by the Event Forwarder on the exit path).
  void deliver(arch::Vcpu& vcpu, const Event& e, AuditContext& ctx) {
    if (rhc_ != nullptr && ++sample_counter_ >= rhc_->config().sample_every) {
      sample_counter_ = 0;
      rhc_->on_sample(e.time);
    }
    const EventMask bit = event_bit(e.kind);
    for (auto& r : regs_) {
      if ((r.auditor->subscriptions() & bit) == 0) continue;
      ++r.delivered;
      ++total_delivered_;
      if (r.auditor->blocking()) {
        vcpu.advance_cycles(r.auditor->audit_cost_cycles());
      } else {
        vcpu.advance_cycles(cfg_.enqueue_cycles);
        r.container_cycles += r.auditor->audit_cost_cycles();
      }
      r.auditor->on_event(e, ctx);
    }
  }

  /// Drive RHC sampling for exits that decode to no subscribed event (the
  /// sample stream covers raw exits, not only decoded events).
  void sample_raw_exit(SimTime t) {
    if (rhc_ != nullptr && ++sample_counter_ >= rhc_->config().sample_every) {
      sample_counter_ = 0;
      rhc_->on_sample(t);
    }
  }

  const std::vector<Registration>& registrations() const { return regs_; }
  u64 total_delivered() const { return total_delivered_; }

 private:
  Config cfg_;
  std::vector<Registration> regs_;
  Rhc* rhc_ = nullptr;
  u32 sample_counter_ = 0;
  u64 total_delivered_ = 0;
};

}  // namespace hypertap
