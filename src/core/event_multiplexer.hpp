// Event Multiplexer (§V-C): buffers events from the Event Forwarder and
// delivers them to registered auditors running in auditing containers.
//
// Unified logging in one place: one VM Exit is decoded once and fanned out
// to every subscribed auditor. Non-blocking delivery charges the guest
// only the tiny enqueue cost; the audit itself runs on container CPU,
// tracked per auditor. Blocking auditors execute before the guest resumes
// and their audit cost is charged to the vCPU (the trade-off Fig. 6's
// spamming attack motivates).
//
// The multiplexer also supervises the auditors (monitor-side fault
// tolerance): an auditor exception is absorbed here — never unwinding into
// the exit path — counted per registration, and after a run of consecutive
// failures the auditor is quarantined behind a circuit breaker. While open,
// its subscribed events are suppressed (and counted); after a cooldown a
// half-open probe re-admits it, first replaying the loss through
// Auditor::on_gap so the auditor resynchronizes from trusted state before
// judging new events. Quarantine entry/exit raise "monitor"-sourced alarms
// through the AlarmSink, so monitor health is observable in the same
// channel as guest health.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/vcpu.hpp"
#include "core/auditor.hpp"
#include "core/delivery_guard.hpp"
#include "core/event.hpp"
#include "core/rhc.hpp"
#include "resilience/circuit_breaker.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

namespace hypertap {

namespace journal {
class JournalWriter;
}

class EventMultiplexer {
 public:
  /// Degradation-ladder rung for this VM's auditing (overload pressure
  /// valve, Zhan-style selective monitoring): full fidelity, sampled
  /// delivery to non-critical auditors, or architectural-invariant-only.
  /// Blocking and architectural() auditors are ALWAYS delivered — the
  /// guaranteed-execution core survives every rung.
  enum class AuditMode : u8 { kFull = 0, kSampled = 1, kInvariantOnly = 2 };

  struct Config {
    /// Per-auditor non-blocking enqueue cost, charged to the guest.
    Cycles enqueue_cycles = 60;
    /// Catch auditor exceptions and quarantine repeat offenders. Off =
    /// legacy fail-fast behaviour (exceptions unwind to the caller).
    bool supervise = true;
    resilience::CircuitBreaker::Config breaker;
    /// Suppress events whose sequence number was already delivered (a
    /// duplicated or stale redelivery must not be audited twice). Cheap:
    /// one comparison against the high-water mark per sequenced event.
    bool dedup = true;
    /// Full ingress hardening (checksum validation + bounded reorder
    /// buffer + gap synthesis). Disabled by default: it buys nothing on a
    /// clean in-process channel and the chaos benches measure exactly
    /// what it buys on a faulty one.
    DeliveryGuard::Config guard;
    /// Deterministic audit-backlog model (0 = disabled). Every delivered
    /// non-blocking audit adds its cost cycles to a modeled container
    /// backlog, drained lazily against sim time at this rate; the rack
    /// supervisor descends the degradation ladder when the backlog crosses
    /// the high watermark. Pure function of the event stream — no wall
    /// clock, no threads — so sharded runs model identical pressure.
    double audit_capacity_cycles_per_ms = 0.0;
    /// Edge-triggered high watermark on the modeled backlog (cycles);
    /// fires once at crossing, re-arms below half (the AsyncAuditorChannel
    /// watermark discipline). 0 = disabled.
    u64 backlog_high_cycles = 0;
  };

  explicit EventMultiplexer(Config cfg) : cfg_(cfg), guard_(cfg.guard) {}
  EventMultiplexer() : EventMultiplexer(Config{}) {}

  struct Registration {
    Auditor* auditor = nullptr;
    u64 delivered = 0;
    /// Container CPU spent auditing (non-blocking analysis time).
    Cycles container_cycles = 0;

    // ---- Supervision state (monitor-side fault tolerance) ----
    resilience::CircuitBreaker breaker;
    u64 faults = 0;             ///< exceptions absorbed from this auditor
    u64 missed_while_open = 0;  ///< subscribed events suppressed right now
    u64 missed_total = 0;       ///< lifetime suppressed events
    u64 resyncs = 0;            ///< on_gap notifications delivered
    std::string last_fault;     ///< what() of the most recent exception

    // ---- Degradation-ladder state (overload shedding) ----
    u64 shed = 0;          ///< lifetime events shed by the ladder
    u64 shed_pending = 0;  ///< shed since last delivery (flushed via on_gap)
    u64 sample_seen = 0;   ///< kSampled stride counter

    /// Cached registry series (nullptr when telemetry is unwired) —
    /// resolved once per registration, never looked up on the hot path.
    /// This is what makes delivered / container_cycles / the supervision
    /// counters externally queryable through the registry.
    struct Tel {
      telemetry::Counter* delivered = nullptr;
      telemetry::Counter* faults = nullptr;
      telemetry::Counter* suppressed = nullptr;
      telemetry::Counter* resyncs = nullptr;
      telemetry::Counter* quarantine_enter = nullptr;
      telemetry::Counter* quarantine_exit = nullptr;
      telemetry::Counter* shed = nullptr;
      telemetry::Gauge* container_cycles = nullptr;
    } tel;
  };

  void register_auditor(Auditor* a, AuditContext& ctx) {
    Registration r;
    r.auditor = a;
    r.breaker = resilience::CircuitBreaker(cfg_.breaker);
    regs_.push_back(std::move(r));
    wire_reg_telemetry(regs_.back());
    a->on_attach(ctx);
  }

  void unregister_auditor(const Auditor* a) {
    std::erase_if(regs_, [a](const Registration& r) { return r.auditor == a; });
  }

  /// Union of all subscriptions — what the Event Forwarder must capture.
  EventMask combined_mask() const {
    EventMask m = 0;
    for (const auto& r : regs_) m |= r.auditor->subscriptions();
    return m;
  }

  void set_rhc(Rhc* rhc) { rhc_ = rhc; }

  /// Fan an event out (called by the Event Forwarder on the exit path).
  /// Runs the ingress hardening first when configured: checksum-validated,
  /// deduplicated, re-ordered events fan out; corrupted ones are dropped
  /// and sequence holes surface through Auditor::on_gap.
  void deliver(arch::Vcpu& vcpu, const Event& e, AuditContext& ctx);

  /// Batched fan-out: semantically identical to n deliver() calls in
  /// order — every counter, breaker transition, shed draw and alarm is
  /// byte-for-byte the same (the batched-vs-unit differential tests hold
  /// this). When `cursor` is non-null it is updated to each event's time
  /// immediately before that event fans out, so a caller-owned clock
  /// (the Replayer's journal-time clock) observes exactly the unit-path
  /// sequence from inside auditor callbacks.
  void deliver_batch(arch::Vcpu& vcpu, const Event* events, std::size_t n,
                     AuditContext& ctx, SimTime* cursor = nullptr);

  /// Release everything the reorder buffer still holds (end of run or
  /// explicit pipeline drain); holes become gap notifications.
  void flush_delivery(arch::Vcpu& vcpu, AuditContext& ctx);

  /// Supervised periodic-callback dispatch (the HyperTap timer chain).
  /// Returns false when the tick was suppressed by an open breaker.
  bool dispatch_timer(Auditor* a, SimTime now, AuditContext& ctx);

  /// Is this auditor currently quarantined (breaker not closed)?
  bool quarantined(const Auditor* a) const {
    const Registration* r = find(a);
    return r != nullptr &&
           r->breaker.state() != resilience::BreakerState::kClosed;
  }

  /// Drive RHC sampling for exits that decode to no subscribed event (the
  /// sample stream covers raw exits, not only decoded events).
  void sample_raw_exit(SimTime t) {
    if (rhc_ != nullptr && ++sample_counter_ >= rhc_->config().sample_every) {
      sample_counter_ = 0;
      rhc_->on_sample(t);
    }
  }

  const std::vector<Registration>& registrations() const { return regs_; }
  const Registration* find(const Auditor* a) const {
    for (const auto& r : regs_)
      if (r.auditor == a) return &r;
    return nullptr;
  }
  u64 total_delivered() const { return total_delivered_; }
  u64 total_faults() const { return total_faults_; }
  u64 total_suppressed() const { return total_suppressed_; }
  u64 duplicates_suppressed() const {
    return duplicates_suppressed_ + guard_.duplicates_suppressed();
  }
  const DeliveryGuard& guard() const { return guard_; }

  // ---- Degradation ladder (rack-supervisor pressure valve) ----

  /// Switch this VM's auditing to a ladder rung. `sample_every` > 0 also
  /// updates the kSampled stride (every Nth subscribed event delivered to
  /// non-critical auditors). Shed counts accumulate per registration and
  /// are flushed to the auditor as one on_gap at its next delivery, so a
  /// stateful auditor resynchronizes instead of trusting a holey stream.
  void set_audit_mode(AuditMode m, u32 sample_every = 0) {
    if (sample_every > 0) sample_every_ = sample_every;
    mode_ = m;
  }
  AuditMode audit_mode() const { return mode_; }
  u64 total_shed() const { return total_shed_; }

  /// Randomized audit sampling (anti-evasion hardening). With a non-zero
  /// seed, degraded rungs shed by a seeded Bernoulli draw instead of the
  /// deterministic stride — and kInvariantOnly keeps a residual trickle of
  /// deliveries/timer ticks alive — so an evasive guest cannot learn the
  /// audit cadence and strike inside a guaranteed-quiet window. Seed 0
  /// restores the legacy stride (the learnable blind spot the evasion
  /// bench demonstrates). Deterministic per seed: replays byte-identical.
  void set_sampling_seed(u64 seed) {
    sampling_seed_ = seed;
    sampling_rng_ = util::Rng(seed);
  }
  u64 sampling_seed() const { return sampling_seed_; }

  /// Modeled container backlog in cycles (0 when the model is disabled),
  /// drained lazily up to `now`.
  u64 backlog_cycles(SimTime now) {
    backlog_drain(now);
    return static_cast<u64>(backlog_cycles_);
  }
  /// Is the high watermark currently tripped (fired, not yet re-armed)?
  bool backlog_watermark_active() const { return wm_fired_; }
  /// Drain the modeled backlog to `now` and evaluate watermark edges even
  /// when no events are flowing — the rack supervisor calls this every
  /// epoch so pressure CLEARS within bounded epochs on a quiesced VM.
  void poll_backlog(SimTime now) {
    if (!backlog_enabled()) return;
    backlog_drain(now);
    backlog_edges(now);
  }
  /// Watermark edge callbacks: on_high(now, backlog_cycles, high) at the
  /// crossing, on_clear(now) when the backlog re-arms below high/2.
  void set_backlog_watermark_callbacks(
      std::function<void(SimTime, u64, u64)> on_high,
      std::function<void(SimTime)> on_clear) {
    on_backlog_high_ = std::move(on_high);
    on_backlog_clear_ = std::move(on_clear);
  }

  /// Mirror every auditor timer tick into the durable journal (the
  /// Replayer re-dispatches them so timer-driven verdicts — GOSHD — are
  /// reproducible). nullptr detaches.
  void set_journal(journal::JournalWriter* w) { journal_ = w; }

  /// Wire the multiplexer (and every already-registered auditor) to a
  /// telemetry bundle: per-auditor counters/gauges, per-stage cycle
  /// histograms and "audit" spans. Auditors registered afterwards are
  /// wired as they arrive.
  void set_telemetry(telemetry::Telemetry* t, int vm_id);

 private:
  /// Post-hardening fan-out of one event to every subscribed auditor.
  void deliver_one(arch::Vcpu& vcpu, const Event& e, AuditContext& ctx);
  /// One supervised call into the auditor (event when `e` != nullptr,
  /// timer tick otherwise). Precondition: the breaker admitted the call.
  /// Returns true when the call completed normally.
  bool supervised_call(Registration& r, const Event* e, SimTime now,
                       AuditContext& ctx);
  /// Cold path shared by deliver()'s fast path and supervised_call():
  /// count the absorbed exception and quarantine on threshold.
  void record_fault(Registration& r, const char* what, SimTime now,
                    AuditContext& ctx);
  void wire_reg_telemetry(Registration& r);

  // ---- Backlog model helpers ----
  bool backlog_enabled() const {
    return cfg_.audit_capacity_cycles_per_ms > 0.0;
  }
  /// Lazy drain against sim time: capacity * elapsed ms, clamped at 0.
  void backlog_drain(SimTime now) {
    if (!backlog_enabled()) return;
    if (now > backlog_drained_to_) {
      const double elapsed_ms =
          static_cast<double>(now - backlog_drained_to_) / 1e6;
      backlog_cycles_ = std::max(
          0.0, backlog_cycles_ - cfg_.audit_capacity_cycles_per_ms * elapsed_ms);
      backlog_drained_to_ = now;
    }
  }
  /// Edge-triggered watermark: fire at >= high, re-arm below high/2.
  void backlog_edges(SimTime now) {
    if (cfg_.backlog_high_cycles == 0) return;
    const u64 b = static_cast<u64>(backlog_cycles_);
    if (!wm_fired_ && b >= cfg_.backlog_high_cycles) {
      wm_fired_ = true;
      if (on_backlog_high_) on_backlog_high_(now, b, cfg_.backlog_high_cycles);
    } else if (wm_fired_ && b < cfg_.backlog_high_cycles / 2) {
      wm_fired_ = false;
      if (on_backlog_clear_) on_backlog_clear_(now);
    }
  }
  /// Shedding decision for one registration under the current rung.
  /// Returns true when the event must be dropped (counted, gap-deferred).
  bool shed_event(Registration& r) {
    if (mode_ == AuditMode::kFull) return false;
    if (r.auditor->blocking() || r.auditor->architectural()) return false;
    if (sampling_seed_ != 0) {
      // Randomized rung: each subscribed event survives with probability
      // 1/sample_every_ in kSampled AND (residual trickle) kInvariantOnly,
      // so no epoch is ever a guaranteed-quiet window.
      if (sampling_rng_.below(sample_every_) == 0) return false;
    } else if (mode_ == AuditMode::kSampled &&
               (r.sample_seen++ % sample_every_) == 0) {
      return false;
    }
    ++r.shed;
    ++r.shed_pending;
    ++total_shed_;
    HT_COUNT(r.tel.shed);
    return true;
  }

  Config cfg_;
  std::vector<Registration> regs_;
  Rhc* rhc_ = nullptr;
  DeliveryGuard guard_;
  journal::JournalWriter* journal_ = nullptr;
  std::vector<Event> ready_;  ///< reused guard-output buffer
  u32 sample_counter_ = 0;
  u64 last_seq_seen_ = 0;  ///< dedup high-water mark (guard-off path)
  u64 total_delivered_ = 0;
  u64 total_faults_ = 0;
  u64 total_suppressed_ = 0;
  u64 duplicates_suppressed_ = 0;

  // ---- Degradation ladder + backlog model ----
  AuditMode mode_ = AuditMode::kFull;
  u32 sample_every_ = 4;  ///< kSampled stride (every Nth event delivered)
  u64 total_shed_ = 0;
  u64 sampling_seed_ = 0;        ///< 0 = deterministic stride (legacy)
  util::Rng sampling_rng_{0};    ///< Bernoulli draws for randomized rungs
  double backlog_cycles_ = 0.0;      ///< modeled container backlog
  SimTime backlog_drained_to_ = 0;   ///< lazy-drain cursor
  bool wm_fired_ = false;            ///< edge-trigger armed state
  std::function<void(SimTime, u64, u64)> on_backlog_high_;
  std::function<void(SimTime)> on_backlog_clear_;

  // Telemetry (nullptr when unwired).
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::Tracer* tracer_ = nullptr;
  int vm_id_ = 0;
  telemetry::Histogram* audit_hist_ = nullptr;   ///< per-event audit cycles
  telemetry::Histogram* fanout_hist_ = nullptr;  ///< guest-synchronous fan-out
  telemetry::Counter* dup_counter_ = nullptr;
  telemetry::Counter* corrupt_counter_ = nullptr;
  telemetry::Counter* gap_counter_ = nullptr;
  u64 guard_dups_reported_ = 0;  ///< guard stats already mirrored to telemetry
  u64 guard_corrupt_reported_ = 0;
  u64 guard_gaps_reported_ = 0;
};

}  // namespace hypertap
