#include "core/rhc.hpp"

namespace hypertap {

void Rhc::start(hv::HostServices& host) {
  last_sample_ = host.now();
  // The RHC lives on an external machine; its check loop is a host event
  // chain independent of guest progress.
  struct Checker {
    Rhc* rhc;
    hv::HostServices* host;
    void operator()() {
      const SimTime now = host->now();
      if (now - rhc->last_sample_ > rhc->cfg_.alert_threshold) {
        if (!rhc->in_alert_) {
          rhc->alerts_.push_back(now);
          rhc->in_alert_ = true;
          HT_COUNT(rhc->alerts_counter_);
        }
      } else {
        rhc->in_alert_ = false;
      }
      host->schedule(now + rhc->cfg_.check_period, Checker{rhc, host});
    }
  };
  host.schedule(host.now() + cfg_.check_period, Checker{this, &host});
}

}  // namespace hypertap
