// HyperTap events: what the shared logging channel carries.
//
// An Event is the decoded form of a VM Exit plus the architectural state
// snapshot the paper's algorithms read (registers at exit time). It is a
// flat value type so it can travel through the lock-free ring buffer
// between the Event Forwarder (hypervisor exit path) and auditing
// containers without allocation.
#pragma once

#include <string>

#include "arch/ept.hpp"
#include "hav/exit.hpp"
#include "util/types.hpp"

namespace hypertap {

using namespace hvsim;

enum class EventKind : u8 {
  kProcessSwitch = 0,  ///< CR3 load (CR_ACCESS)
  kThreadSwitch,       ///< TSS.RSP0 store (EPT_VIOLATION on TSS page)
  kSyscall,            ///< INT 0x80 EXCEPTION or SYSENTER-entry fetch
  kIo,                 ///< IN/OUT (IO_INSTRUCTION)
  kMmio,               ///< EPT_VIOLATION in an MMIO window
  kExternalInterrupt,
  kMsrWrite,
  kApicAccess,
  kMemAccess,  ///< other EPT violations (fine-grained interception)
  kRdtsc,      ///< RDTSC (when rdtsc_exiting is programmed)
  kCount,
};

const char* to_string(EventKind k);

using EventMask = u32;

constexpr EventMask event_bit(EventKind k) {
  return 1u << static_cast<u32>(k);
}

/// Every event kind (used by integrity checkers that audit on any exit).
inline constexpr EventMask kAllEvents =
    (1u << static_cast<u32>(EventKind::kCount)) - 1;

struct Event {
  EventKind kind = EventKind::kProcessSwitch;
  hav::ExitReason reason = hav::ExitReason::kCrAccess;
  int vcpu = 0;
  SimTime time = 0;

  /// Monotonic per-source sequence number (1-based; 0 = unsequenced).
  /// Stamped by the Event Forwarder on the exit path; consumers use gaps
  /// in the sequence to detect lost events and trigger auditor resync.
  u64 seq = 0;
  /// Number of events this source dropped immediately before this one
  /// (in-band loss marker set by overflowing channels; 0 = no loss).
  u32 gap_before = 0;
  /// Integrity checksum over the semantic payload (everything except
  /// gap_before, which channels legitimately rewrite, and csum itself).
  /// Stamped by the Event Forwarder at emit time; the multiplexer's
  /// delivery guard drops events whose payload no longer matches — a
  /// corrupted event must never reach an auditor as evidence. 0 =
  /// unstamped (hand-built events in tests), never validated.
  u32 csum = 0;

  // Architectural-state snapshot (the root of trust): captured from the
  // VMCS guest-state area at exit time.
  u32 reg_cr3 = 0;
  Gva reg_tr = 0;
  u32 reg_rsp = 0;

  // Kind-specific payload.
  u32 cr3_old = 0, cr3_new = 0;         // kProcessSwitch
  u32 rsp0 = 0;                         // kThreadSwitch: new kernel stack top
  u8 sc_nr = 0;                         // kSyscall
  u32 sc_args[3] = {0, 0, 0};
  bool sc_fast = false;
  u16 io_port = 0;                      // kIo
  bool io_is_write = false;
  u32 io_value = 0;
  u32 msr_index = 0;                    // kMsrWrite
  u64 msr_value = 0;
  u8 int_vector = 0;                    // kExternalInterrupt
  Gva gva = 0;                          // kMmio / kMemAccess
  Gpa gpa = 0;
  arch::Access access = arch::Access::kRead;

  /// FNV-1a over the semantic fields (see csum). Deterministic across
  /// runs and platforms: computed field by field, never over raw struct
  /// bytes (padding would leak).
  u32 payload_checksum() const;

  std::string describe() const;
};

}  // namespace hypertap
