// Event Forwarder (§V-C): the hook in the hypervisor's exit path — the
// simulation analogue of the <100-line KVM patch.
//
// Decodes VM Exits into HyperTap events, implements the interception
// algorithms of Fig. 3:
//  - Fig. 3A/3B arming: on the first CR_ACCESS, write-protect the page of
//    each vCPU's TSS (located through TR — an architectural invariant).
//  - Fig. 3E: learn the SYSENTER entry from WRMSR and execute-protect its
//    page; a fetch of that page is a fast system call.
//  - Fig. 3D: software interrupt 0x80 exits are interrupt-based syscalls.
#pragma once

#include <array>
#include <vector>

#include "arch/tss.hpp"
#include "core/event_multiplexer.hpp"
#include "hv/hypervisor.hpp"
#include "telemetry/telemetry.hpp"

namespace hypertap {

namespace journal {
class JournalWriter;
}

/// Interposition point on the delivery path between the Event Forwarder
/// and the Event Multiplexer — the seam where delivery faults happen in a
/// real deployment (a flaky shared ring, a lossy transport) and where the
/// ChaosEngine injects them in ours. An interceptor receives each
/// forwarded event and emits zero or more events to actually deliver
/// (drop, duplicate, corrupt, hold back for later).
class EventInterceptor {
 public:
  virtual ~EventInterceptor() = default;
  virtual void intercept(const Event& e, std::vector<Event>& out) = 0;
  /// Release anything held back (end of run / pipeline drain).
  virtual void drain(std::vector<Event>& out) { (void)out; }
};

class EventForwarder final : public hv::ExitObserver {
 public:
  struct Config {
    /// Non-blocking forward cost on the exit path, charged to the guest.
    Cycles forward_cycles = 300;
  };

  EventForwarder(hv::Hypervisor& hv, EventMultiplexer& em, AuditContext& ctx,
                 Config cfg);
  EventForwarder(hv::Hypervisor& hv, EventMultiplexer& em, AuditContext& ctx)
      : EventForwarder(hv, em, ctx, Config{}) {}
  ~EventForwarder() override;

  EventForwarder(const EventForwarder&) = delete;
  EventForwarder& operator=(const EventForwarder&) = delete;

  /// Program VMCS controls / EPT protections for the union of auditor
  /// subscriptions. Safe to call repeatedly (e.g. when auditors come and
  /// go); arming that depends on runtime state (TR, MSRs) is retried as
  /// the state becomes available.
  void set_mask(EventMask mask);
  EventMask mask() const { return mask_; }

  // hv::ExitObserver
  void on_vm_exit(arch::Vcpu& vcpu, const hav::Exit& exit) override;

  u64 events_forwarded() const { return forwarded_; }
  u64 exits_observed() const { return exits_observed_; }

  /// Append every forwarded event to a durable journal. The tap sits at
  /// the exit path itself — BEFORE any interceptor — so the journal
  /// records the trusted at-capture stream, not whatever survived the
  /// delivery faults downstream. nullptr detaches.
  void set_journal(journal::JournalWriter* w) { journal_ = w; }

  /// Interpose on event delivery (chaos injection). nullptr detaches.
  void set_interceptor(EventInterceptor* i) { interceptor_ = i; }

  /// Drain the interceptor's held-back events into the multiplexer and
  /// flush the multiplexer's own reorder buffer (end-of-run barrier).
  void flush_delivery();

  /// Wire per-kind event counters (ht_events_total{kind,vm}) plus a
  /// "forward" span around each multiplexer delivery, and mirror every
  /// forwarded event into the flight recorder's ring.
  void set_telemetry(telemetry::Telemetry* t, int vm_id);

  /// True once the TSS pages are write-protected (Fig. 3B armed).
  bool thread_interception_armed() const { return tss_armed_; }
  bool syscall_interception_armed() const { return sysenter_armed_; }

 private:
  void arm_thread_interception();
  void arm_sysenter(Gva entry);
  void emit(arch::Vcpu& vcpu, Event e);

  hv::Hypervisor& hv_;
  EventMultiplexer& em_;
  AuditContext& ctx_;
  Config cfg_;
  EventMask mask_ = 0;

  bool tss_armed_ = false;
  std::vector<Gpa> tss_rsp0_gpa_;  ///< per-vCPU GPA of TSS.RSP0

  Gva sysenter_entry_ = 0;
  Gpa sysenter_page_ = 0;
  bool sysenter_armed_ = false;

  u64 forwarded_ = 0;
  u64 exits_observed_ = 0;
  journal::JournalWriter* journal_ = nullptr;
  EventInterceptor* interceptor_ = nullptr;
  std::vector<Event> intercepted_;  ///< reused interceptor-output buffer

  // Telemetry (all nullptr when unwired).
  telemetry::Tracer* tracer_ = nullptr;
  telemetry::FlightRecorder* flight_ = nullptr;
  int vm_id_ = 0;
  std::array<telemetry::Counter*, static_cast<std::size_t>(EventKind::kCount)>
      event_counters_{};
  telemetry::Counter* exits_observed_counter_ = nullptr;
};

}  // namespace hypertap
