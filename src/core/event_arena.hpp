// Zero-copy batched event fan-out: the arena/slab counterpart of
// AsyncAuditorChannel.
//
// The per-event channel copies the full ~128-byte Event into every
// subscribed consumer's ring and pays an acquire/release atomic pair per
// copy. At fan-out N that is N copies and 2N ordered atomics per event —
// the dominant cost in bench/em_throughput. This layer replaces it with:
//
//  * EventArena — a power-of-two slab of refcounted Event slots. The
//    producer copies each event into guest-exit order exactly ONCE; every
//    consumer reads the same slot and drops a reference when done. A slot
//    is reusable the moment its count hits zero (checked with an acquire
//    load before the producer's next lap reuses it).
//  * EventRef — the 8-byte {slot, gap} handle that actually travels
//    through the rings instead of the Event.
//  * BatchedFanout — one SpscRing<EventRef> + consumer thread per
//    auditor. Refs are staged producer-side and flushed with
//    SpscRing::try_push_n: one acquire/release pair per BATCH per ring.
//    Consumers drain with pop_n, amortizing the other side the same way.
//
// Flush-deadline semantics: a partial batch never waits indefinitely.
// publish() flushes when (a) the batch fills, (b) the oldest staged ref
// has waited past `flush_deadline`, or (c) the event's kind is in the
// `urgent` mask (alarm-relevant kinds flush immediately), so
// latency-sensitive verdicts still fire promptly. flush() is the explicit
// end-of-run barrier.
//
// Loss is never silent, same discipline as AsyncAuditorChannel: a ref that
// cannot be staged (arena lap not yet released) or pushed (ring full) is
// counted per channel and surfaced to that auditor via on_gap on its next
// delivery (or at stop()).
//
// The deterministic simulation does NOT route through this class — live
// fan-out must stay synchronous per-event or later event timestamps would
// shift (see DESIGN.md §16). This is the production-shaped real-thread
// edge, exercised by tests/test_batching.cpp and gated by
// bench/em_throughput --gate.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/auditor.hpp"
#include "util/ring_buffer.hpp"

namespace hypertap {

class EventArena {
 public:
  static constexpr u32 kNone = 0xFFFFFFFFu;

  /// Slot count is rounded up to a power of two.
  explicit EventArena(std::size_t min_slots) {
    std::size_t cap = 2;
    while (cap < min_slots) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  /// Producer: claim the next slot in lap order, copy `e` into it once and
  /// arm `refs` references. Returns kNone while the slot from the previous
  /// lap still holds references (arena full = slowest consumer is a full
  /// lap behind).
  u32 acquire(const Event& e, u32 refs) {
    const u32 idx = static_cast<u32>(cursor_ & mask_);
    Slot& s = slots_[idx];
    if (s.refs.load(std::memory_order_acquire) != 0) return kNone;
    s.ev = e;
    s.refs.store(refs, std::memory_order_release);
    ++cursor_;
    return idx;
  }

  /// Valid while the caller holds a reference on the slot.
  const Event& at(u32 idx) const { return slots_[idx].ev; }

  /// Drop one reference (consumer finished with the slot, or the producer
  /// retracts a channel that missed the event).
  void release(u32 idx) {
    slots_[idx].refs.fetch_sub(1, std::memory_order_acq_rel);
  }

  std::size_t capacity() const { return slots_.size(); }
  u32 refs(u32 idx) const {
    return slots_[idx].refs.load(std::memory_order_acquire);
  }

 private:
  struct Slot {
    Event ev;
    std::atomic<u32> refs{0};
  };
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t cursor_ = 0;  ///< producer-only lap counter
};

/// The 8-byte handle that travels through the rings instead of the Event.
/// `gap` carries the channel's accumulated loss since its last delivered
/// ref (the gap_before discipline of the per-event channel).
struct EventRef {
  u32 slot = 0;
  u32 gap = 0;
};

class BatchedFanout {
 public:
  struct Config {
    std::size_t arena_slots = 8192;
    std::size_t ring_capacity = 4096;
    /// Refs staged per channel before a flush (the batch the single
    /// acquire/release pair amortizes over).
    std::size_t batch = 64;
    /// Oldest-staged-ref latency bound: publish() flushes a partial batch
    /// once this much wall clock has passed since the batch started.
    std::chrono::microseconds flush_deadline{200};
    /// Kinds that flush the batch immediately (latency-sensitive events —
    /// the auditors judging them must not wait out a batch).
    EventMask urgent = 0;
    /// Idle consumer: spin-yield this many times before parking.
    u32 spin_before_park = 256;
    std::chrono::microseconds park_interval{500};
    /// Consumer pop_n burst size.
    std::size_t consume_chunk = 64;
  };

  struct ChannelStats {
    u64 enqueued = 0;  ///< refs staged for this channel
    u64 dropped = 0;   ///< refs lost (arena full or ring full)
    u64 audited = 0;   ///< events delivered to the auditor
    u64 gaps_signalled = 0;
    u64 auditor_faults = 0;
  };

  explicit BatchedFanout(Config cfg) : cfg_(cfg), arena_(cfg.arena_slots) {}
  BatchedFanout() : BatchedFanout(Config{}) {}
  ~BatchedFanout() { stop(); }

  BatchedFanout(const BatchedFanout&) = delete;
  BatchedFanout& operator=(const BatchedFanout&) = delete;

  /// Add a consumer channel (its own ring + thread). Auditor and context
  /// must outlive the fanout. Call before the first publish().
  void add_channel(Auditor& auditor, AuditContext& ctx) {
    auto ch = std::make_unique<Channel>(auditor, ctx, cfg_.ring_capacity);
    ch->staged.reserve(cfg_.batch);
    Channel* p = ch.get();
    channels_.push_back(std::move(ch));
    p->consumer = std::thread([this, p]() { drain(*p); });
  }

  /// Producer side (the forwarder edge). ONE Event copy into the arena,
  /// one staged 8-byte ref per subscribed channel. Returns false when at
  /// least one subscribed channel lost the event.
  bool publish(const Event& e) {
    const EventMask bit = event_bit(e.kind);
    u32 refs = 0;
    for (const auto& ch : channels_) {
      if ((ch->auditor.subscriptions() & bit) != 0) ++refs;
    }
    if (refs == 0) return true;

    u32 idx = arena_.acquire(e, refs);
    for (int spin = 0; idx == EventArena::kNone && spin < 64; ++spin) {
      // Arena lap not yet released: push what is staged (consumers may be
      // waiting on exactly these refs) and give them a beat.
      flush_staged();
      std::this_thread::yield();
      idx = arena_.acquire(e, refs);
    }
    if (idx == EventArena::kNone) {
      for (const auto& ch : channels_) {
        if ((ch->auditor.subscriptions() & bit) == 0) continue;
        ++ch->pending_gap;
        ch->dropped.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }

    for (const auto& ch : channels_) {
      if ((ch->auditor.subscriptions() & bit) == 0) continue;
      ch->staged.push_back(EventRef{idx, ch->pending_gap});
      ch->pending_gap = 0;
      ch->enqueued.fetch_add(1, std::memory_order_relaxed);
    }
    if (staged_events_++ == 0) {
      batch_started_ = std::chrono::steady_clock::now();
    }
    const bool urgent = (cfg_.urgent & bit) != 0;
    if (staged_events_ >= cfg_.batch || urgent ||
        std::chrono::steady_clock::now() - batch_started_ >=
            cfg_.flush_deadline) {
      flush_staged();
    }
    return true;
  }

  /// Push every staged ref now (partial-batch barrier; also called on the
  /// deadline/urgent paths).
  void flush_staged() {
    for (const auto& ch : channels_) {
      if (ch->staged.empty()) continue;
      const std::size_t pushed =
          ch->ring.try_push_n(ch->staged.data(), ch->staged.size());
      for (std::size_t i = pushed; i < ch->staged.size(); ++i) {
        // Ring full: this channel misses the tail of the batch.
        arena_.release(ch->staged[i].slot);
        ch->pending_gap += 1 + ch->staged[i].gap;
        ch->dropped.fetch_add(1, std::memory_order_relaxed);
      }
      ch->staged.clear();
      if (pushed > 0 && ch->parked.load(std::memory_order_seq_cst)) {
        std::lock_guard<std::mutex> lk(ch->park_mu);
        ch->park_cv.notify_one();
      }
    }
    staged_events_ = 0;
  }

  /// Stop every consumer after draining what is queued; losses with no
  /// later delivery to piggyback on are surfaced via on_gap here.
  void stop() {
    if (stopped_) return;
    stopped_ = true;
    // Push staged refs BEFORE raising the stop flag: consumers exit only
    // on stopping && ring-empty, so everything flushed here still drains.
    flush_staged();
    stopping_.store(true, std::memory_order_release);
    for (const auto& ch : channels_) {
      {
        std::lock_guard<std::mutex> lk(ch->park_mu);
      }
      ch->park_cv.notify_one();
      if (ch->consumer.joinable()) ch->consumer.join();
      if (ch->pending_gap > 0) {
        ch->gaps_signalled.fetch_add(1, std::memory_order_relaxed);
        try {
          ch->auditor.on_gap(ch->pending_gap, ch->ctx);
        } catch (...) {
          ch->auditor_faults.fetch_add(1, std::memory_order_relaxed);
        }
        ch->pending_gap = 0;
      }
    }
  }

  std::size_t channel_count() const { return channels_.size(); }
  ChannelStats channel_stats(std::size_t i) const {
    const Channel& ch = *channels_.at(i);
    ChannelStats s;
    s.enqueued = ch.enqueued.load(std::memory_order_relaxed);
    s.dropped = ch.dropped.load(std::memory_order_relaxed);
    s.audited = ch.audited.load(std::memory_order_relaxed);
    s.gaps_signalled = ch.gaps_signalled.load(std::memory_order_relaxed);
    s.auditor_faults = ch.auditor_faults.load(std::memory_order_relaxed);
    return s;
  }
  const EventArena& arena() const { return arena_; }

 private:
  struct Channel {
    Channel(Auditor& a, AuditContext& c, std::size_t capacity)
        : auditor(a), ctx(c), ring(capacity) {}
    Auditor& auditor;
    AuditContext& ctx;
    util::SpscRing<EventRef> ring;
    std::thread consumer;

    // Producer-only state.
    std::vector<EventRef> staged;
    u32 pending_gap = 0;

    // Shared state.
    std::atomic<bool> parked{false};
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<u64> enqueued{0};
    std::atomic<u64> dropped{0};
    std::atomic<u64> audited{0};
    std::atomic<u64> gaps_signalled{0};
    std::atomic<u64> auditor_faults{0};
  };

  void drain(Channel& ch) {
    std::vector<EventRef> chunk(cfg_.consume_chunk);
    u32 idle = 0;
    for (;;) {
      const std::size_t n = ch.ring.pop_n(chunk.data(), chunk.size());
      if (n > 0) {
        idle = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const EventRef r = chunk[i];
          try {
            if (r.gap > 0) {
              ch.gaps_signalled.fetch_add(1, std::memory_order_relaxed);
              ch.auditor.on_gap(r.gap, ch.ctx);
            }
            ch.auditor.on_event(arena_.at(r.slot), ch.ctx);
          } catch (...) {
            ch.auditor_faults.fetch_add(1, std::memory_order_relaxed);
          }
          arena_.release(r.slot);
          ch.audited.fetch_add(1, std::memory_order_relaxed);
        }
        continue;
      }
      if (stopping_.load(std::memory_order_acquire) && ch.ring.empty()) {
        return;
      }
      if (++idle < cfg_.spin_before_park) {
        std::this_thread::yield();
        continue;
      }
      idle = 0;
      std::unique_lock<std::mutex> lk(ch.park_mu);
      ch.parked.store(true, std::memory_order_seq_cst);
      if (ch.ring.empty() && !stopping_.load(std::memory_order_acquire)) {
        ch.park_cv.wait_for(lk, cfg_.park_interval);
      }
      ch.parked.store(false, std::memory_order_seq_cst);
    }
  }

  Config cfg_;
  EventArena arena_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::size_t staged_events_ = 0;  ///< staged since the last flush
  std::chrono::steady_clock::time_point batch_started_{};
  bool stopped_ = false;  ///< producer-side stop() idempotence
  std::atomic<bool> stopping_{false};
};

}  // namespace hypertap
