#include "core/os_state.hpp"

#include "arch/tss.hpp"

namespace hypertap {

u32 OsStateDerivation::rd32(Gpa pdba, Gva gva) const {
  const auto v = hv_.read_guest(pdba, gva, 4);
  return v ? static_cast<u32>(*v) : 0;
}

GuestTaskView OsStateDerivation::current_task(int vcpu) const {
  const auto& regs = hv_.vcpu(vcpu).regs();
  // TR is the invariant entry point; the TSS it designates holds RSP0.
  const Gva tss = regs.tr;
  if (tss == 0) return {};
  const u32 rsp0 = rd32(regs.cr3, tss + arch::TSS_RSP0_OFFSET);
  if (rsp0 == 0) return {};
  return task_from_rsp0(vcpu, rsp0);
}

GuestTaskView OsStateDerivation::task_from_rsp0(int vcpu, u32 rsp0) const {
  const auto& regs = hv_.vcpu(vcpu).regs();
  const Gva ti = os::thread_info_of(rsp0);
  const Gva task_gva = rd32(regs.cr3, ti + os::TI_TASK);
  if (task_gva == 0) return {};
  return read_task(regs.cr3, task_gva);
}

GuestTaskView OsStateDerivation::read_task(Gpa pdba, Gva task_gva) const {
  GuestTaskView v;
  const auto probe = hv_.read_guest(pdba, task_gva + os::TS_PID, 4);
  if (!probe) return v;
  v.valid = true;
  v.task_gva = task_gva;
  v.pid = static_cast<u32>(*probe);
  v.uid = rd32(pdba, task_gva + os::TS_UID);
  v.euid = rd32(pdba, task_gva + os::TS_EUID);
  v.ppid = rd32(pdba, task_gva + os::TS_PPID);
  v.state = rd32(pdba, task_gva + os::TS_STATE);
  v.flags = rd32(pdba, task_gva + os::TS_FLAGS);
  v.exe_id = rd32(pdba, task_gva + os::TS_EXE_ID);
  v.pdba = rd32(pdba, task_gva + os::TS_PDBA);
  v.parent_gva = rd32(pdba, task_gva + os::TS_PARENT);
  char comm[os::TS_COMM_LEN + 1] = {};
  for (u32 i = 0; i < os::TS_COMM_LEN; i += 4) {
    const u32 word = rd32(pdba, task_gva + os::TS_COMM + i);
    comm[i] = static_cast<char>(word);
    comm[i + 1] = static_cast<char>(word >> 8);
    comm[i + 2] = static_cast<char>(word >> 16);
    comm[i + 3] = static_cast<char>(word >> 24);
  }
  v.comm = comm;
  return v;
}

std::optional<u32> OsStateDerivation::parent_uid(
    Gpa pdba, const GuestTaskView& t) const {
  if (!t.valid || t.parent_gva == 0) return std::nullopt;
  const auto v = hv_.read_guest(pdba, t.parent_gva + os::TS_UID, 4);
  if (!v) return std::nullopt;
  return static_cast<u32>(*v);
}

}  // namespace hypertap
