// HyperTap facade: wires the Event Forwarder, Event Multiplexer, trusted
// OS-state derivation, Remote Health Checker, and auditor timers onto a
// simulated VM.
//
// Usage:
//   os::Vm vm;
//   hypertap::HyperTap ht(vm);           // attach BEFORE boot for
//   ht.add_auditor(std::make_unique<auditors::Goshd>(...));
//   vm.kernel.boot();                    //   boot-time events
//   vm.machine.run_for(10_s);
//   ... inspect ht.alarms() ...
#pragma once

#include <memory>
#include <vector>

#include "core/auditor.hpp"
#include "core/event_forwarder.hpp"
#include "core/event_multiplexer.hpp"
#include "core/os_state.hpp"
#include "core/rhc.hpp"
#include "os/kernel.hpp"

namespace hypertap {

class HyperTap {
 public:
  struct Options {
    bool enable_rhc = false;
    Rhc::Config rhc;
    EventForwarder::Config forwarder;
    EventMultiplexer::Config multiplexer;
  };

  HyperTap(os::Vm& vm, Options opts);
  explicit HyperTap(os::Vm& vm) : HyperTap(vm, Options{}) {}
  ~HyperTap();

  HyperTap(const HyperTap&) = delete;
  HyperTap& operator=(const HyperTap&) = delete;

  /// Wire the whole monitoring pipeline to a telemetry bundle: exit-engine
  /// and forwarder counters/spans, multiplexer per-auditor series, RHC
  /// liveness counters, alarm instants, WARN+ log capture into the flight
  /// ring, and a flight dump on every alarm. `telemetry` must outlive this
  /// HyperTap (the destructor detaches the log tap through it). Pass
  /// nullptr to unwire.
  void set_telemetry(telemetry::Telemetry* telemetry, int vm_id);
  telemetry::Telemetry* telemetry() { return telemetry_; }

  /// Attach a durable event journal: every forwarded event (at the exit
  /// path, pre-fault), every auditor timer tick, and every raised alarm is
  /// appended as a CRC-protected record. The journal is what makes a
  /// monitoring run replayable after the fact — and what recovery replays
  /// to restore auditor history past the last checkpoint. The writer must
  /// outlive this HyperTap or be detached (nullptr) first.
  void attach_journal(journal::JournalWriter* writer);
  journal::JournalWriter* journal() { return journal_; }

  /// End-of-run barrier: release everything held back on the delivery
  /// path (an interceptor's delayed events, the reorder buffer) so gap
  /// accounting is complete before results are read.
  void flush_delivery() { forwarder_->flush_delivery(); }

  /// Register an auditor; reprograms VMCS controls to the union of all
  /// auditor subscriptions and starts the auditor's periodic timer.
  void add_auditor(std::unique_ptr<Auditor> auditor);

  /// Remove an auditor by pointer (as returned from auditor<T>()).
  void remove_auditor(const Auditor* auditor);

  AlarmSink& alarms() { return alarms_; }
  const AlarmSink& alarms() const { return alarms_; }
  EventForwarder& forwarder() { return *forwarder_; }
  EventMultiplexer& multiplexer() { return em_; }
  OsStateDerivation& os_state() { return derivation_; }
  Rhc* rhc() { return rhc_ ? rhc_.get() : nullptr; }
  AuditContext& context() { return ctx_; }

  /// Find the first auditor of a concrete type (test/bench convenience).
  template <typename T>
  T* auditor() {
    for (const auto& a : auditors_) {
      if (auto* p = dynamic_cast<T*>(a.get())) return p;
    }
    return nullptr;
  }

 private:
  os::Vm& vm_;
  AlarmSink alarms_;
  OsStateDerivation derivation_;
  AuditContext ctx_;
  EventMultiplexer em_;
  std::unique_ptr<EventForwarder> forwarder_;
  std::unique_ptr<Rhc> rhc_;
  std::vector<std::unique_ptr<Auditor>> auditors_;

  // Telemetry (nullptr when unwired).
  telemetry::Telemetry* telemetry_ = nullptr;
  int vm_id_ = 0;
  int log_tap_ = -1;  ///< flight-recorder log-capture handle
  bool alarm_sub_installed_ = false;

  // Durable journal (nullptr when unattached).
  journal::JournalWriter* journal_ = nullptr;
  bool journal_sub_installed_ = false;
};

}  // namespace hypertap
