// Remote Health Checker (§V-C): a heartbeat server for the monitor itself.
//
// The Event Multiplexer samples the VM Exit stream to the RHC (modeled as
// an object with its own clock on a "separate machine"). If no samples
// arrive for the alert threshold, the RHC raises a liveness alert — either
// the VM is no longer producing exits (hypervisor wedged) or the logging
// channel died.
#pragma once

#include <string>
#include <vector>

#include "hv/host_services.hpp"
#include "telemetry/telemetry.hpp"
#include "util/types.hpp"

namespace hypertap {

using namespace hvsim;

class Rhc {
 public:
  struct Config {
    /// Forward one of every N exits to the RHC.
    u32 sample_every = 64;
    SimTime check_period = 500'000'000;    // 0.5 s
    SimTime alert_threshold = 3'000'000'000;  // 3 s
  };

  explicit Rhc(Config cfg) : cfg_(cfg) {}
  Rhc() : Rhc(Config{}) {}

  const Config& config() const { return cfg_; }

  /// A sampled event arrived over the (virtual) network.
  void on_sample(SimTime t) {
    last_sample_ = t;
    ++samples_;
    HT_COUNT(samples_counter_);
  }

  /// Wire liveness counters: ht_rhc_samples_total{vm} and
  /// ht_rhc_alerts_total{vm}.
  void set_telemetry(telemetry::Telemetry* t, int vm_id) {
    if (t == nullptr) {
      samples_counter_ = nullptr;
      alerts_counter_ = nullptr;
      return;
    }
    const std::string vm = std::to_string(vm_id);
    samples_counter_ = t->registry.counter("ht_rhc_samples_total", {{"vm", vm}});
    alerts_counter_ = t->registry.counter("ht_rhc_alerts_total", {{"vm", vm}});
  }

  /// Begin periodic liveness checks on the given host clock.
  void start(hv::HostServices& host);

  /// Re-arm after a VM restore/resume: treat `now` as a fresh sample and
  /// drop the alert latch, so the pre-restore silence (the hang that
  /// triggered recovery) doesn't immediately re-trip the threshold.
  void reset(SimTime now) {
    last_sample_ = now;
    in_alert_ = false;
  }

  u64 samples_received() const { return samples_; }
  SimTime last_sample() const { return last_sample_; }
  const std::vector<SimTime>& alerts() const { return alerts_; }
  bool alerted() const { return !alerts_.empty(); }

 private:
  Config cfg_;
  SimTime last_sample_ = 0;
  u64 samples_ = 0;
  std::vector<SimTime> alerts_;
  bool in_alert_ = false;

  // Telemetry (nullptr when unwired). The checker event chain increments
  // alerts_counter_, so it must stay valid for the host's lifetime.
  telemetry::Counter* samples_counter_ = nullptr;
  telemetry::Counter* alerts_counter_ = nullptr;
};

}  // namespace hypertap
