#include "core/delivery_guard.hpp"

namespace hypertap {

void DeliveryGuard::release(Event e, u64 gap, std::vector<Event>& ready) {
  if (gap > 0) {
    // Ride the existing in-band loss path: the multiplexer sees
    // gap_before > 0 and raises Auditor::on_gap before delivery.
    e.gap_before += static_cast<u32>(gap);
    gaps_signaled_ += gap;
  }
  ready.push_back(std::move(e));
}

void DeliveryGuard::ingest(const Event& e, std::vector<Event>& ready) {
  if (!cfg_.enabled || e.seq == 0) {
    ready.push_back(e);
    return;
  }
  if (cfg_.validate_csum && e.csum != 0 &&
      e.csum != e.payload_checksum()) {
    // Corrupted evidence: drop. The sequence hole this leaves is surfaced
    // as a gap once the window passes it.
    ++corrupted_dropped_;
    return;
  }
  if (next_seq_ == 0) next_seq_ = e.seq;  // anchor to the stream's start
  if (e.seq < next_seq_ || pending_.count(e.seq) != 0) {
    ++duplicates_suppressed_;
    return;
  }
  if (e.seq == next_seq_) {
    release(e, 0, ready);
    ++next_seq_;
  } else {
    pending_.emplace(e.seq, e);
  }
  // Drain buffered events that are now consecutive.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_seq_;
       it = pending_.erase(it), ++next_seq_) {
    ++reordered_released_;
    release(std::move(it->second), 0, ready);
  }
  // Bounded lookahead: give up on sequence numbers the window has passed.
  while (!pending_.empty() &&
         (pending_.rbegin()->first - next_seq_ >= cfg_.reorder_window ||
          pending_.size() >= cfg_.reorder_window)) {
    auto it = pending_.begin();
    const u64 gap = it->first - next_seq_;
    next_seq_ = it->first + 1;
    ++reordered_released_;
    release(std::move(it->second), gap, ready);
    pending_.erase(it);
    for (it = pending_.begin();
         it != pending_.end() && it->first == next_seq_;
         it = pending_.erase(it), ++next_seq_) {
      ++reordered_released_;
      release(std::move(it->second), 0, ready);
    }
  }
}

void DeliveryGuard::drain(std::vector<Event>& ready) {
  for (auto& [seq, e] : pending_) {
    const u64 gap = seq - next_seq_;
    next_seq_ = seq + 1;
    ++reordered_released_;
    release(std::move(e), gap, ready);
  }
  pending_.clear();
}

}  // namespace hypertap
