// Delivery guard: the hardening stage between the shared logging channel
// and auditor fan-out. The event stream is the trusted root of every RnS
// policy, so delivery faults (drops, duplicates, reordering, payload
// corruption — whether from a flaky transport or an injected chaos fault)
// must be absorbed HERE, before an auditor can mistake a damaged stream
// for guest misbehaviour.
//
// Per ingested event, in order:
//  1. Integrity: an event whose payload checksum no longer matches its
//     stamp is dropped (corrupted evidence never reaches an auditor); the
//     resulting sequence hole is later surfaced as a gap.
//  2. Dedup: a sequence number at or below the release cursor has already
//     been delivered (or declared lost) — suppressed.
//  3. Reorder: an event ahead of the release cursor is buffered; events
//     are released strictly in sequence order. The buffer is bounded: when
//     the lookahead exceeds the window, the guard gives up on the missing
//     sequence numbers, releases the oldest buffered event with
//     `gap_before` set to the hole size, and advances. That marker rides
//     the existing loss path — the multiplexer raises Auditor::on_gap and
//     stateful auditors resync from the trusted derivation.
//
// Unsequenced events (seq == 0, hand-built in tests) bypass the guard
// entirely. On a clean in-order stream every event releases immediately,
// so the guard's cost is one checksum + one comparison per event.
#pragma once

#include <map>
#include <vector>

#include "core/event.hpp"

namespace hypertap {

class DeliveryGuard {
 public:
  struct Config {
    bool enabled = false;
    /// Maximum sequence lookahead (and buffered-event count) before the
    /// guard declares the missing sequence numbers lost.
    u32 reorder_window = 32;
    /// Validate payload checksums on stamped events.
    bool validate_csum = true;
  };

  DeliveryGuard() = default;
  explicit DeliveryGuard(Config cfg) : cfg_(cfg) {}

  const Config& config() const { return cfg_; }

  /// Ingest one event; append every event now ready for fan-out (in
  /// sequence order) to `ready`.
  void ingest(const Event& e, std::vector<Event>& ready);

  /// Release everything still buffered (end of run / pipeline drain),
  /// marking the holes as gaps.
  void drain(std::vector<Event>& ready);

  u64 duplicates_suppressed() const { return duplicates_suppressed_; }
  u64 corrupted_dropped() const { return corrupted_dropped_; }
  u64 reordered_released() const { return reordered_released_; }
  u64 gaps_signaled() const { return gaps_signaled_; }
  std::size_t buffered() const { return pending_.size(); }

 private:
  void release(Event e, u64 gap, std::vector<Event>& ready);

  Config cfg_;
  u64 next_seq_ = 0;  ///< 0 = not yet anchored to the stream's first seq
  std::map<u64, Event> pending_;

  u64 duplicates_suppressed_ = 0;
  u64 corrupted_dropped_ = 0;
  u64 reordered_released_ = 0;
  u64 gaps_signaled_ = 0;
};

}  // namespace hypertap
