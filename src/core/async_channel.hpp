// A real auditing-container channel: the lock-free SPSC ring plus a
// consumer thread draining it.
//
// The simulation's Event Multiplexer dispatches synchronously in simulated
// time (deterministic); this class is the production-shaped counterpart —
// the exit path enqueues and returns, the container thread audits in
// parallel, and overload is visible as counted drops instead of guest
// stalls. It is unit-tested and benchmarked (bench/em_throughput) and can
// be composed with any Auditor.
#pragma once

#include <atomic>
#include <memory>
#include <thread>

#include "core/auditor.hpp"
#include "util/ring_buffer.hpp"

namespace hypertap {

class AsyncAuditorChannel {
 public:
  struct Stats {
    u64 enqueued = 0;
    u64 dropped = 0;
    u64 audited = 0;
  };

  /// The channel does not own the auditor or the context; both must
  /// outlive it. `capacity` is the ring depth (events buffered while the
  /// container is busy).
  AsyncAuditorChannel(Auditor& auditor, AuditContext& ctx,
                      std::size_t capacity = 4096)
      : auditor_(auditor), ctx_(ctx), ring_(capacity) {
    consumer_ = std::thread([this]() { drain(); });
  }

  ~AsyncAuditorChannel() { stop(); }

  AsyncAuditorChannel(const AsyncAuditorChannel&) = delete;
  AsyncAuditorChannel& operator=(const AsyncAuditorChannel&) = delete;

  /// Producer side (the exit path): never blocks. Full ring = drop, which
  /// the EM accounts per auditor.
  bool publish(const Event& e) {
    if ((auditor_.subscriptions() & event_bit(e.kind)) == 0) return true;
    ++enqueued_;
    if (ring_.try_push(e)) return true;
    ++dropped_;
    return false;
  }

  /// Stop the container thread after draining what is queued.
  void stop() {
    if (!consumer_.joinable()) return;
    stopping_.store(true, std::memory_order_release);
    consumer_.join();
  }

  Stats stats() const {
    Stats s;
    s.enqueued = enqueued_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.audited = audited_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  void drain() {
    for (;;) {
      if (auto e = ring_.try_pop()) {
        auditor_.on_event(*e, ctx_);
        audited_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (stopping_.load(std::memory_order_acquire) && ring_.empty()) {
        return;
      }
      std::this_thread::yield();
    }
  }

  Auditor& auditor_;
  AuditContext& ctx_;
  util::SpscRing<Event> ring_;
  std::thread consumer_;
  std::atomic<bool> stopping_{false};
  std::atomic<u64> enqueued_{0};
  std::atomic<u64> dropped_{0};
  std::atomic<u64> audited_{0};
};

}  // namespace hypertap
