// A real auditing-container channel: the lock-free SPSC ring plus a
// consumer thread draining it.
//
// The simulation's Event Multiplexer dispatches synchronously in simulated
// time (deterministic); this class is the production-shaped counterpart —
// the exit path enqueues and returns, the container thread audits in
// parallel, and overload is visible as counted drops instead of guest
// stalls. It is unit-tested and benchmarked (bench/em_throughput) and can
// be composed with any Auditor.
//
// Monitor-side fault tolerance:
//  * Overflow policy — a full ring can drop the newest event (default,
//    never blocks), drop the oldest buffered event (keeps the freshest
//    state flowing to the auditor), or block the producer for a bounded
//    time before dropping.
//  * Loss is never silent — every drop is stamped into the next delivered
//    event's `gap_before`, and the consumer raises Auditor::on_gap before
//    the next audit so stateful auditors resynchronize instead of rotting.
//  * High-watermark callback — edge-triggered backpressure signal when
//    ring occupancy crosses a configurable fraction (e.g. to shed load or
//    alarm before events are actually lost).
//  * Drain-deadline watchdog — if the ring stays non-empty with no
//    consumer progress past the deadline, the consumer is declared
//    stalled and the channel degrades to synchronous delivery on the
//    producer thread (liveness over ordering); when the consumer comes
//    back it is resynchronized through on_gap before resuming.
//  * The idle consumer spins briefly, then parks on a condition variable —
//    an idle channel does not burn a core.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/auditor.hpp"
#include "telemetry/telemetry.hpp"
#include "util/ring_buffer.hpp"

namespace hypertap {

class AsyncAuditorChannel {
 public:
  enum class OverflowPolicy : u8 {
    kDropNewest,       ///< full ring: drop the incoming event (never block)
    kDropOldest,       ///< full ring: discard the oldest buffered event
    kBlockWithTimeout  ///< full ring: wait briefly for space, then drop
  };

  struct Config {
    std::size_t capacity = 4096;
    OverflowPolicy policy = OverflowPolicy::kDropNewest;
    /// kBlockWithTimeout: longest publish() may wait for ring space.
    std::chrono::microseconds block_timeout{200};
    /// Occupancy fraction firing the high-watermark callback
    /// (edge-triggered; re-arms once occupancy falls below half of it).
    double high_watermark = 0.75;
    /// Consumer liveness: ring non-empty with no consumer progress for
    /// this long => consumer stalled, degrade to synchronous delivery.
    std::chrono::milliseconds drain_deadline{50};
    /// Idle consumer: spin-yield this many times before parking.
    u32 spin_before_park = 256;
    /// Park timeout (bounds wakeup staleness if a notify is missed).
    std::chrono::microseconds park_interval{500};
  };

  struct Stats {
    u64 enqueued = 0;  ///< subscribed events offered to the ring
    u64 dropped = 0;   ///< total losses, all causes
    u64 audited = 0;   ///< events the consumer delivered to the auditor
    // Loss breakdown.
    u64 dropped_newest = 0;      ///< full ring, drop-newest (or fallback)
    u64 dropped_oldest = 0;      ///< full ring, oldest discarded instead
    u64 dropped_after_stop = 0;  ///< publish() after stop(): refused
    u64 dropped_stalled = 0;     ///< stalled consumer held the audit lock
    u64 block_timeouts = 0;      ///< kBlockWithTimeout waits that expired
    // Degradation / resync visibility.
    u64 sync_delivered = 0;   ///< delivered synchronously while stalled
    u64 gaps_signalled = 0;   ///< on_gap notifications raised
    u64 watermark_hits = 0;   ///< high-watermark edge crossings
    u64 stalls_detected = 0;  ///< watchdog stall verdicts
    u64 auditor_faults = 0;   ///< auditor exceptions absorbed here
  };

  /// The channel does not own the auditor or the context; both must
  /// outlive it.
  AsyncAuditorChannel(Auditor& auditor, AuditContext& ctx, Config cfg)
      : auditor_(auditor), ctx_(ctx), cfg_(cfg), ring_(cfg.capacity) {
    wm_slots_ = static_cast<std::size_t>(
        static_cast<double>(ring_.capacity()) * cfg_.high_watermark);
    if (wm_slots_ == 0) wm_slots_ = 1;
    consumer_ = std::thread([this]() { drain(); });
  }
  AsyncAuditorChannel(Auditor& auditor, AuditContext& ctx,
                      std::size_t capacity = 4096)
      : AsyncAuditorChannel(auditor, ctx, with_capacity(capacity)) {}

  ~AsyncAuditorChannel() { stop(); }

  AsyncAuditorChannel(const AsyncAuditorChannel&) = delete;
  AsyncAuditorChannel& operator=(const AsyncAuditorChannel&) = delete;

  /// Producer side (the exit path). Returns false when the event was lost
  /// (counted, and surfaced to the auditor as a gap). Blocks only under
  /// kBlockWithTimeout, and then only up to `block_timeout`.
  bool publish(const Event& e) {
    if ((auditor_.subscriptions() & event_bit(e.kind)) == 0) return true;
    if (stopping_.load(std::memory_order_acquire)) {
      // The consumer is gone (or going): whatever lands in the ring now
      // would never be audited. Refuse loudly instead of losing silently.
      dropped_after_stop_.fetch_add(1, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      tinc(tel_dropped_);
      return false;
    }
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    tinc(tel_enqueued_);
    check_consumer_liveness();
    if (stalled_.load(std::memory_order_acquire)) return publish_stalled(e);

    Event copy = e;
    copy.gap_before = pending_gap_;
    if (ring_.try_push(copy)) return on_pushed();

    switch (cfg_.policy) {
      case OverflowPolicy::kDropNewest:
        break;  // drop below
      case OverflowPolicy::kDropOldest: {
        // Ask the consumer to discard one buffered event, then wait
        // briefly for the slot. SPSC stays intact: only the consumer pops.
        skip_credit_.fetch_add(1, std::memory_order_release);
        for (int i = 0; i < 64; ++i) {
          if (ring_.try_push(copy)) return on_pushed();
          std::this_thread::yield();
        }
        // Consumer did not move (likely stalled): revoke the credit if it
        // is still unspent, so a later pop is not discarded by mistake.
        u32 c = skip_credit_.load(std::memory_order_relaxed);
        while (c > 0 && !skip_credit_.compare_exchange_weak(
                            c, c - 1, std::memory_order_relaxed)) {
        }
        if (ring_.try_push(copy)) return on_pushed();
        break;
      }
      case OverflowPolicy::kBlockWithTimeout: {
        const auto deadline =
            std::chrono::steady_clock::now() + cfg_.block_timeout;
        while (std::chrono::steady_clock::now() < deadline) {
          if (ring_.try_push(copy)) return on_pushed();
          check_consumer_liveness();
          if (stalled_.load(std::memory_order_acquire)) {
            return publish_stalled(e);
          }
          std::this_thread::yield();
        }
        block_timeouts_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
    ++pending_gap_;
    dropped_newest_.fetch_add(1, std::memory_order_relaxed);
    dropped_.fetch_add(1, std::memory_order_relaxed);
    tinc(tel_dropped_);
    return false;
  }

  /// Edge-triggered occupancy signal; invoked on the producer thread.
  void set_high_watermark_callback(
      std::function<void(std::size_t size, std::size_t capacity)> cb) {
    watermark_cb_ = std::move(cb);
  }

  /// Stop the container thread after draining what is queued.
  void stop() {
    if (!consumer_.joinable()) return;
    {
      std::lock_guard<std::mutex> lk(park_mu_);
      stopping_.store(true, std::memory_order_release);
    }
    park_cv_.notify_one();
    consumer_.join();
    // A drop burst with no later successful push (e.g. right before
    // shutdown) has no event to piggyback its gap marker on — surface it
    // now so the loss is never silent.
    if (pending_gap_ > 0) {
      gaps_signalled_.fetch_add(1, std::memory_order_relaxed);
      tinc(tel_gaps_);
      try {
        auditor_.on_gap(pending_gap_, ctx_);
      } catch (...) {
        auditor_faults_.fetch_add(1, std::memory_order_relaxed);
        tinc(tel_faults_);
      }
      pending_gap_ = 0;
    }
  }

  bool consumer_stalled() const {
    return stalled_.load(std::memory_order_acquire);
  }

  /// Mirror the channel's stats into registry counters labelled
  /// {channel=<label>, auditor=<name>}. The pointers are atomics because
  /// the consumer thread may already be running when wiring happens; the
  /// counters themselves are relaxed atomics, so cross-thread increments
  /// are safe by construction.
  void set_telemetry(telemetry::Telemetry* t, const std::string& label) {
#ifndef HYPERTAP_TELEMETRY_DISABLED
    if (t == nullptr) {
      for (auto* p : {&tel_enqueued_, &tel_dropped_, &tel_audited_,
                      &tel_gaps_, &tel_watermark_, &tel_stalls_,
                      &tel_sync_delivered_, &tel_faults_}) {
        p->store(nullptr, std::memory_order_release);
      }
      return;
    }
    const telemetry::Labels l{{"auditor", auditor_.name()},
                              {"channel", label}};
    auto& reg = t->registry;
    tel_enqueued_.store(reg.counter("ht_channel_enqueued_total", l),
                        std::memory_order_release);
    tel_dropped_.store(reg.counter("ht_channel_dropped_total", l),
                       std::memory_order_release);
    tel_audited_.store(reg.counter("ht_channel_audited_total", l),
                       std::memory_order_release);
    tel_gaps_.store(reg.counter("ht_channel_gaps_total", l),
                    std::memory_order_release);
    tel_watermark_.store(reg.counter("ht_channel_watermark_hits_total", l),
                         std::memory_order_release);
    tel_stalls_.store(reg.counter("ht_channel_stalls_total", l),
                      std::memory_order_release);
    tel_sync_delivered_.store(
        reg.counter("ht_channel_sync_delivered_total", l),
        std::memory_order_release);
    tel_faults_.store(reg.counter("ht_channel_auditor_faults_total", l),
                      std::memory_order_release);
#else
    (void)t;
    (void)label;
#endif
  }

  Stats stats() const {
    Stats s;
    s.enqueued = enqueued_.load(std::memory_order_relaxed);
    s.dropped = dropped_.load(std::memory_order_relaxed);
    s.audited = audited_.load(std::memory_order_relaxed);
    s.dropped_newest = dropped_newest_.load(std::memory_order_relaxed);
    s.dropped_oldest = dropped_oldest_.load(std::memory_order_relaxed);
    s.dropped_after_stop =
        dropped_after_stop_.load(std::memory_order_relaxed);
    s.dropped_stalled = dropped_stalled_.load(std::memory_order_relaxed);
    s.block_timeouts = block_timeouts_.load(std::memory_order_relaxed);
    s.sync_delivered = sync_delivered_.load(std::memory_order_relaxed);
    s.gaps_signalled = gaps_signalled_.load(std::memory_order_relaxed);
    s.watermark_hits = watermark_hits_.load(std::memory_order_relaxed);
    s.stalls_detected = stalls_detected_.load(std::memory_order_relaxed);
    s.auditor_faults = auditor_faults_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static Config with_capacity(std::size_t capacity) {
    Config c;
    c.capacity = capacity;
    return c;
  }

  static void tinc(const std::atomic<telemetry::Counter*>& c) {
#ifndef HYPERTAP_TELEMETRY_DISABLED
    if (auto* p = c.load(std::memory_order_acquire)) p->inc();
#else
    (void)c;
#endif
  }

  /// Producer-side bookkeeping after a successful push.
  bool on_pushed() {
    pending_gap_ = 0;
    const std::size_t size = ring_.size();
    if (!wm_fired_ && size >= wm_slots_) {
      wm_fired_ = true;
      watermark_hits_.fetch_add(1, std::memory_order_relaxed);
      tinc(tel_watermark_);
      if (watermark_cb_) watermark_cb_(size, ring_.capacity());
    } else if (wm_fired_ && size < wm_slots_ / 2) {
      wm_fired_ = false;
    }
    if (parked_.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> lk(park_mu_);
      park_cv_.notify_one();
    }
    return true;
  }

  /// Watchdog (producer side): ring non-empty + no consumer progress past
  /// the drain deadline => consumer stalled.
  void check_consumer_liveness() {
    if (stalled_.load(std::memory_order_relaxed)) return;
    if (ring_.empty()) {
      watch_since_ = {};
      return;
    }
    const u64 p = progress_.load(std::memory_order_acquire);
    const auto now = std::chrono::steady_clock::now();
    if (watch_since_ == std::chrono::steady_clock::time_point{} ||
        p != watch_progress_) {
      watch_progress_ = p;
      watch_since_ = now;
      return;
    }
    if (now - watch_since_ >= cfg_.drain_deadline) {
      stalls_detected_.fetch_add(1, std::memory_order_relaxed);
      tinc(tel_stalls_);
      stalled_.store(true, std::memory_order_release);
    }
  }

  /// Degraded mode: deliver on the producer thread, synchronously. The
  /// audit lock keeps the auditor single-threaded; if the consumer is
  /// wedged *inside* on_event (holding the lock), the event is dropped
  /// rather than blocking the exit path.
  bool publish_stalled(const Event& e) {
    std::unique_lock<std::mutex> lk(audit_mu_, std::try_to_lock);
    if (!lk.owns_lock()) {
      ++pending_gap_;
      dropped_stalled_.fetch_add(1, std::memory_order_relaxed);
      dropped_.fetch_add(1, std::memory_order_relaxed);
      tinc(tel_dropped_);
      return false;
    }
    Event copy = e;
    copy.gap_before = pending_gap_;
    pending_gap_ = 0;
    deliver(copy);
    sync_delivered_.fetch_add(1, std::memory_order_relaxed);
    tinc(tel_sync_delivered_);
    sync_since_stall_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Deliver one event (gap first, then the event), absorbing auditor
  /// exceptions — a crashing auditor must not kill either thread.
  /// Caller holds audit_mu_.
  void deliver(const Event& e) {
    try {
      if (e.gap_before > 0) {
        gaps_signalled_.fetch_add(1, std::memory_order_relaxed);
        tinc(tel_gaps_);
        auditor_.on_gap(e.gap_before, ctx_);
      }
      auditor_.on_event(e, ctx_);
    } catch (...) {
      auditor_faults_.fetch_add(1, std::memory_order_relaxed);
      tinc(tel_faults_);
    }
    audited_.fetch_add(1, std::memory_order_relaxed);
    tinc(tel_audited_);
  }

  void drain() {
    u32 idle = 0;
    u64 consumer_gap = 0;  // drop-oldest discards awaiting an on_gap
    // pop_n chunk: one acquire/release pair frees up to kChunk ring slots
    // at once; each event is then processed with the exact unit-path
    // logic (skip credit, stall resync, gap folding) per element.
    constexpr std::size_t kChunk = 32;
    std::vector<Event> chunk(kChunk);
    for (;;) {
      const std::size_t n = ring_.pop_n(chunk.data(), kChunk);
      if (n > 0) {
        progress_.fetch_add(n, std::memory_order_release);
        idle = 0;
        for (std::size_t ci = 0; ci < n; ++ci) {
          Event& e = chunk[ci];
          u32 credit = skip_credit_.load(std::memory_order_acquire);
          bool discard = false;
          while (credit > 0) {
            if (skip_credit_.compare_exchange_weak(
                    credit, credit - 1, std::memory_order_acq_rel)) {
              discard = true;
              break;
            }
          }
          if (discard) {
            // Drop-oldest: this event makes room; it becomes part of the
            // gap the auditor is told about.
            consumer_gap += 1 + e.gap_before;
            dropped_oldest_.fetch_add(1, std::memory_order_relaxed);
            dropped_.fetch_add(1, std::memory_order_relaxed);
            tinc(tel_dropped_);
            continue;
          }
          std::lock_guard<std::mutex> lk(audit_mu_);
          if (stalled_.exchange(false, std::memory_order_acq_rel)) {
            // Back from a stall: events were sync-delivered out of order
            // around the ring — resynchronize before resuming in-order
            // consumption. (The producer re-arms its own watchdog window:
            // progress_ already advanced, so the next liveness check
            // resets watch_since_ — watch state stays producer-only.)
            consumer_gap += sync_since_stall_.exchange(
                0, std::memory_order_relaxed);
          }
          e.gap_before += static_cast<u32>(consumer_gap);
          consumer_gap = 0;
          deliver(e);
        }
        continue;
      }
      if (stopping_.load(std::memory_order_acquire) && ring_.empty()) {
        return;
      }
      if (++idle < cfg_.spin_before_park) {
        std::this_thread::yield();
        continue;
      }
      idle = 0;
      std::unique_lock<std::mutex> lk(park_mu_);
      parked_.store(true, std::memory_order_seq_cst);
      if (ring_.empty() && !stopping_.load(std::memory_order_acquire)) {
        park_cv_.wait_for(lk, cfg_.park_interval);
      }
      parked_.store(false, std::memory_order_seq_cst);
    }
  }

  Auditor& auditor_;
  AuditContext& ctx_;
  Config cfg_;
  util::SpscRing<Event> ring_;
  std::thread consumer_;
  std::atomic<bool> stopping_{false};

  // Producer-only state.
  u32 pending_gap_ = 0;  ///< drops since the last successful push
  bool wm_fired_ = false;
  std::size_t wm_slots_ = 0;
  u64 watch_progress_ = 0;
  std::chrono::steady_clock::time_point watch_since_{};
  std::function<void(std::size_t, std::size_t)> watermark_cb_;

  // Shared state.
  std::atomic<u64> progress_{0};     ///< consumer pops (liveness signal)
  std::atomic<u32> skip_credit_{0};  ///< drop-oldest discards requested
  std::atomic<bool> stalled_{false};
  std::atomic<u64> sync_since_stall_{0};
  std::atomic<bool> parked_{false};
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::mutex audit_mu_;  ///< auditor is single-threaded across modes

  std::atomic<u64> enqueued_{0};
  std::atomic<u64> dropped_{0};
  std::atomic<u64> audited_{0};
  std::atomic<u64> dropped_newest_{0};
  std::atomic<u64> dropped_oldest_{0};
  std::atomic<u64> dropped_after_stop_{0};
  std::atomic<u64> dropped_stalled_{0};
  std::atomic<u64> block_timeouts_{0};
  std::atomic<u64> sync_delivered_{0};
  std::atomic<u64> gaps_signalled_{0};
  std::atomic<u64> watermark_hits_{0};
  std::atomic<u64> stalls_detected_{0};
  std::atomic<u64> auditor_faults_{0};

  // Telemetry mirrors (nullptr when unwired; see set_telemetry).
  std::atomic<telemetry::Counter*> tel_enqueued_{nullptr};
  std::atomic<telemetry::Counter*> tel_dropped_{nullptr};
  std::atomic<telemetry::Counter*> tel_audited_{nullptr};
  std::atomic<telemetry::Counter*> tel_gaps_{nullptr};
  std::atomic<telemetry::Counter*> tel_watermark_{nullptr};
  std::atomic<telemetry::Counter*> tel_stalls_{nullptr};
  std::atomic<telemetry::Counter*> tel_sync_delivered_{nullptr};
  std::atomic<telemetry::Counter*> tel_faults_{nullptr};
};

}  // namespace hypertap
