#include "core/event_forwarder.hpp"

#include "arch/msr.hpp"
#include "journal/journal.hpp"
#include "os/syscalls.hpp"
#include "util/log.hpp"

namespace hypertap {

EventForwarder::EventForwarder(hv::Hypervisor& hv, EventMultiplexer& em,
                               AuditContext& ctx, Config cfg)
    : hv_(hv), em_(em), ctx_(ctx), cfg_(cfg),
      tss_rsp0_gpa_(hv.num_vcpus(), 0) {
  hv_.add_observer(this);
}

EventForwarder::~EventForwarder() { hv_.remove_observer(this); }

void EventForwarder::set_mask(EventMask mask) {
  mask_ = mask;
  const bool want_switches =
      mask & (event_bit(EventKind::kProcessSwitch) |
              event_bit(EventKind::kThreadSwitch));
  const bool want_syscalls = mask & event_bit(EventKind::kSyscall);

  hv_.engine().for_all_controls([&](hav::VmcsControls& c) {
    // Thread-switch interception arms itself at the first CR_ACCESS, so
    // CR3 exiting is needed for both switch kinds (Fig. 3A/3B).
    c.cr3_load_exiting = want_switches || want_syscalls ? true : false;
    // Fig. 3D: both the Linux (0x80) and Windows (0x2E) syscall gates.
    c.exception_bitmap.set(os::SYSCALL_INT_VECTOR, want_syscalls);
    c.exception_bitmap.set(os::SYSCALL_INT_VECTOR_NT, want_syscalls);
    c.msr_write_exiting = want_syscalls;
    c.apic_access_exiting =
        (mask & event_bit(EventKind::kApicAccess)) != 0;
    c.rdtsc_exiting = (mask & event_bit(EventKind::kRdtsc)) != 0;
  });

  // Late attach: if the guest is already running, the arming triggers
  // (first CR3 write, SYSENTER MSR write) have already happened — read
  // the live state instead of waiting for exits that will never come.
  if (mask & event_bit(EventKind::kThreadSwitch)) {
    if (!tss_armed_ && hv_.vcpu(0).regs().tr != 0) arm_thread_interception();
  }
  if (want_syscalls && !sysenter_armed_) {
    const u64 eip = hv_.vcpu(0).msrs().read(arch::IA32_SYSENTER_EIP);
    if (eip != 0) arm_sysenter(static_cast<Gva>(eip));
  }
}

void EventForwarder::arm_thread_interception() {
  // Fig. 3B: for each vCPU, locate the TSS through TR and write-protect
  // the page that contains it.
  for (int i = 0; i < hv_.num_vcpus(); ++i) {
    const Gva tr = hv_.vcpu(i).regs().tr;
    if (tr == 0) return;  // guest not far enough into boot; retry later
    const auto gpa =
        hv_.gva_to_gpa(hv_.vcpu(i).regs().cr3, tr + arch::TSS_RSP0_OFFSET);
    if (!gpa) return;
    tss_rsp0_gpa_[i] = *gpa;
  }
  for (int i = 0; i < hv_.num_vcpus(); ++i) {
    hv_.ept().write_protect(tss_rsp0_gpa_[i], true);
  }
  tss_armed_ = true;
  HVSIM_DEBUG("EF: thread-switch interception armed");
}

void EventForwarder::arm_sysenter(Gva entry) {
  sysenter_entry_ = entry;
  const auto gpa = hv_.gva_to_gpa(hv_.vcpu(0).regs().cr3, entry);
  if (!gpa) return;
  sysenter_page_ = page_base(*gpa);
  hv_.ept().exec_protect(sysenter_page_, true);
  sysenter_armed_ = true;
  HVSIM_DEBUG("EF: fast-syscall interception armed at " << std::hex << entry);
}

void EventForwarder::set_telemetry(telemetry::Telemetry* t, int vm_id) {
  if (t == nullptr) {
    tracer_ = nullptr;
    flight_ = nullptr;
    event_counters_.fill(nullptr);
    exits_observed_counter_ = nullptr;
    return;
  }
  tracer_ = &t->tracer;
  flight_ = &t->flight;
  vm_id_ = vm_id;
  const std::string vm = std::to_string(vm_id);
  for (std::size_t i = 0; i < event_counters_.size(); ++i) {
    event_counters_[i] = t->registry.counter(
        "ht_events_total",
        {{"kind", to_string(static_cast<EventKind>(i))}, {"vm", vm}});
  }
  exits_observed_counter_ =
      t->registry.counter("ht_ef_exits_observed_total", {{"vm", vm}});
}

void EventForwarder::emit(arch::Vcpu& vcpu, Event e) {
  e.vcpu = vcpu.id();
  e.time = vcpu.now();
  e.reg_cr3 = vcpu.regs().cr3;
  e.reg_tr = vcpu.regs().tr;
  e.reg_rsp = vcpu.regs().rsp;
  if ((mask_ & event_bit(e.kind)) == 0) return;
  e.seq = ++forwarded_;
  e.csum = e.payload_checksum();
  vcpu.advance_cycles(cfg_.forward_cycles);
  HT_COUNT(event_counters_[static_cast<std::size_t>(e.kind)]);
  HT_FLIGHT(flight_, vm_id_, kEvent, e.time, to_string(e.kind),
            "seq=" + std::to_string(e.seq));
  // Durable capture happens at the exit path, before any delivery fault
  // can touch the event: the journal is the trusted record.
  if (journal_ != nullptr) journal_->append_event(e);
  // The forward span wraps enqueue + fan-out: it is the child of the
  // enclosing "exit" span on the same vCPU track.
  const auto span = HT_SPAN_BEGIN_ARG(tracer_, vm_id_, vcpu.id(), "forward",
                                      "pipeline", e.time, to_string(e.kind));
  if (interceptor_ != nullptr) {
    intercepted_.clear();
    interceptor_->intercept(e, intercepted_);
    for (const Event& d : intercepted_) em_.deliver(vcpu, d, ctx_);
  } else {
    em_.deliver(vcpu, e, ctx_);
  }
  HT_SPAN_END(tracer_, span, vcpu.now());
}

void EventForwarder::flush_delivery() {
  arch::Vcpu& vcpu = hv_.vcpu(0);
  if (interceptor_ != nullptr) {
    intercepted_.clear();
    interceptor_->drain(intercepted_);
    for (const Event& d : intercepted_) em_.deliver(vcpu, d, ctx_);
  }
  em_.flush_delivery(vcpu, ctx_);
}

void EventForwarder::on_vm_exit(arch::Vcpu& vcpu, const hav::Exit& exit) {
  ++exits_observed_;
  HT_COUNT(exits_observed_counter_);
  em_.sample_raw_exit(exit.time);

  switch (exit.reason) {
    case hav::ExitReason::kCrAccess: {
      const auto& q = std::get<hav::CrAccessQual>(exit.qual);
      if ((mask_ & event_bit(EventKind::kThreadSwitch)) && !tss_armed_) {
        arm_thread_interception();
      }
      // Retry fast-syscall arming: the WRMSR may have happened before
      // paging was live (or before we attached).
      if ((mask_ & event_bit(EventKind::kSyscall)) && !sysenter_armed_) {
        const u64 eip = vcpu.msrs().read(arch::IA32_SYSENTER_EIP);
        if (eip != 0) arm_sysenter(static_cast<Gva>(eip));
      }
      Event e;
      e.kind = EventKind::kProcessSwitch;
      e.reason = exit.reason;
      e.cr3_old = q.old_value;
      e.cr3_new = q.new_value;
      emit(vcpu, e);
      break;
    }
    case hav::ExitReason::kException: {
      const auto& q = std::get<hav::ExceptionQual>(exit.qual);
      if (q.software && (q.vector == os::SYSCALL_INT_VECTOR ||
                         q.vector == os::SYSCALL_INT_VECTOR_NT)) {
        Event e;
        e.kind = EventKind::kSyscall;
        e.reason = exit.reason;
        e.sc_fast = false;
        e.sc_nr = static_cast<u8>(vcpu.regs().reg(arch::Gpr::RAX));
        e.sc_args[0] = vcpu.regs().reg(arch::Gpr::RBX);
        e.sc_args[1] = vcpu.regs().reg(arch::Gpr::RCX);
        e.sc_args[2] = vcpu.regs().reg(arch::Gpr::RDX);
        emit(vcpu, e);
      }
      break;
    }
    case hav::ExitReason::kWrmsr: {
      const auto& q = std::get<hav::WrmsrQual>(exit.qual);
      if (q.index == arch::IA32_SYSENTER_EIP &&
          (mask_ & event_bit(EventKind::kSyscall))) {
        arm_sysenter(static_cast<Gva>(q.value));
      }
      Event e;
      e.kind = EventKind::kMsrWrite;
      e.reason = exit.reason;
      e.msr_index = q.index;
      e.msr_value = q.value;
      emit(vcpu, e);
      break;
    }
    case hav::ExitReason::kEptViolation: {
      const auto& q = std::get<hav::EptViolationQual>(exit.qual);
      if (q.access == arch::Access::kWrite && tss_armed_ &&
          q.gpa == tss_rsp0_gpa_[vcpu.id()]) {
        // Fig. 3B: [Addr] <- V where Addr == &TSS.RSP0: V is the kernel
        // stack top of the thread being switched in.
        Event e;
        e.kind = EventKind::kThreadSwitch;
        e.reason = exit.reason;
        e.rsp0 = static_cast<u32>(q.value);
        e.gva = q.gva;
        e.gpa = q.gpa;
        emit(vcpu, e);
        break;
      }
      if (q.access == arch::Access::kExecute && sysenter_armed_ &&
          page_base(q.gpa) == sysenter_page_) {
        // Fig. 3E: execution of the protected syscall entry point.
        Event e;
        e.kind = EventKind::kSyscall;
        e.reason = exit.reason;
        e.sc_fast = true;
        e.sc_nr = static_cast<u8>(vcpu.regs().reg(arch::Gpr::RAX));
        e.sc_args[0] = vcpu.regs().reg(arch::Gpr::RBX);
        e.sc_args[1] = vcpu.regs().reg(arch::Gpr::RCX);
        e.sc_args[2] = vcpu.regs().reg(arch::Gpr::RDX);
        emit(vcpu, e);
        break;
      }
      Event e;
      e.kind = q.gpa >= hv_.phys_mem().size() - (1u << 20)
                   ? EventKind::kMmio
                   : EventKind::kMemAccess;
      e.reason = exit.reason;
      e.gva = q.gva;
      e.gpa = q.gpa;
      e.access = q.access;
      emit(vcpu, e);
      break;
    }
    case hav::ExitReason::kIoInstruction: {
      const auto& q = std::get<hav::IoQual>(exit.qual);
      Event e;
      e.kind = EventKind::kIo;
      e.reason = exit.reason;
      e.io_port = q.port;
      e.io_is_write = q.is_write;
      e.io_value = q.value;
      emit(vcpu, e);
      break;
    }
    case hav::ExitReason::kExternalInterrupt: {
      const auto& q = std::get<hav::ExtIntQual>(exit.qual);
      Event e;
      e.kind = EventKind::kExternalInterrupt;
      e.reason = exit.reason;
      e.int_vector = q.vector;
      emit(vcpu, e);
      break;
    }
    case hav::ExitReason::kApicAccess: {
      const auto& q = std::get<hav::ApicAccessQual>(exit.qual);
      Event e;
      e.kind = EventKind::kApicAccess;
      e.reason = exit.reason;
      e.gva = q.offset;
      emit(vcpu, e);
      break;
    }
    case hav::ExitReason::kRdtsc: {
      const auto& q = std::get<hav::RdtscQual>(exit.qual);
      Event e;
      e.kind = EventKind::kRdtsc;
      e.reason = exit.reason;
      // Payload rides the MSR fields: the counter IS an MSR (0x10).
      e.msr_index = arch::IA32_TIME_STAMP_COUNTER;
      e.msr_value = q.tsc;
      emit(vcpu, e);
      break;
    }
    default:
      break;
  }
}

}  // namespace hypertap
