// The auditing-phase API: auditors, their execution context, and alarms.
//
// Auditors implement RnS policies independently of each other and of the
// shared logging channel (§V-B). They receive events, may derive guest
// state through the trusted OsStateDerivation, raise alarms, and — for
// blocking policies — pause the target VM during analysis.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/event.hpp"
#include "core/os_state.hpp"
#include "hv/hypervisor.hpp"

namespace hypertap {

struct Alarm {
  SimTime time = 0;
  std::string auditor;
  std::string type;    ///< e.g. "vcpu-hang", "hidden-task", "priv-escalation"
  std::string detail;
  int vcpu = -1;
  u32 pid = 0;
};

/// Collects alarms; optionally invokes a callback per alarm (used by
/// experiment drivers to timestamp detections).
class AlarmSink {
 public:
  void raise(Alarm a) {
    if (on_alarm_) on_alarm_(a);
    for (const auto& s : subscribers_) s(a);
    alarms_.push_back(std::move(a));
  }
  const std::vector<Alarm>& all() const { return alarms_; }
  std::vector<Alarm> of_type(const std::string& type) const {
    std::vector<Alarm> out;
    for (const auto& a : alarms_)
      if (a.type == type) out.push_back(a);
    return out;
  }
  bool any_of_type(const std::string& type) const {
    for (const auto& a : alarms_)
      if (a.type == type) return true;
    return false;
  }
  void set_callback(std::function<void(const Alarm&)> cb) {
    on_alarm_ = std::move(cb);
  }
  /// Additional subscribers (e.g. a RecoveryManager) that must observe the
  /// stream without displacing the primary experiment callback.
  void subscribe(std::function<void(const Alarm&)> cb) {
    subscribers_.push_back(std::move(cb));
  }
  void clear() { alarms_.clear(); }

 private:
  std::vector<Alarm> alarms_;
  std::function<void(const Alarm&)> on_alarm_;
  std::vector<std::function<void(const Alarm&)>> subscribers_;
};

/// Everything an auditor may touch. Note there is no route to guest-OS
/// data except through the trusted derivation and raw helper reads — the
/// framework's root-of-trust discipline.
class AuditContext {
 public:
  AuditContext(hv::Hypervisor& hv, const OsStateDerivation& derivation,
               AlarmSink& alarms)
      : hv_(hv), derivation_(derivation), alarms_(alarms) {}

  hv::Hypervisor& hypervisor() { return hv_; }
  const OsStateDerivation& os() const { return derivation_; }
  AlarmSink& alarms() { return alarms_; }

  /// Blocking analysis support (§V-B): freeze the VM while auditing.
  void pause_vm(SimTime duration) { hv_.pause_guest(duration); }

  /// Simulated time, for auditors that must re-baseline out-of-band
  /// (resync after event loss). 0 when no clock is wired (bare contexts
  /// in unit tests).
  SimTime now() const { return clock_ ? clock_() : 0; }
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

 private:
  hv::Hypervisor& hv_;
  const OsStateDerivation& derivation_;
  AlarmSink& alarms_;
  std::function<SimTime()> clock_;
};

class Auditor {
 public:
  virtual ~Auditor() = default;

  virtual std::string name() const = 0;

  /// Which event kinds this auditor registers for.
  virtual EventMask subscriptions() const = 0;

  /// Called for every matching event.
  virtual void on_event(const Event& e, AuditContext& ctx) = 0;

  /// Called when the delivery path lost events this auditor had subscribed
  /// to (`missed` is a lower bound): ring overflow, a quarantine window, or
  /// a detected sequence gap. Default: fall back to a full resync, since a
  /// stateful auditor cannot know which updates it missed.
  virtual void on_gap(u64 missed, AuditContext& ctx) {
    (void)missed;
    resync(ctx);
  }

  /// Rebuild shadow state from the trusted OS-state derivation so the
  /// auditor continues from a known-good baseline instead of silently
  /// stale state. Default: stateless auditor, nothing to rebuild.
  virtual void resync(AuditContext& ctx) { (void)ctx; }

  /// Called once when the auditor is registered.
  virtual void on_attach(AuditContext& ctx) { (void)ctx; }

  /// Nonzero = the auditor wants periodic callbacks (e.g. GOSHD's
  /// threshold checks).
  virtual SimTime timer_period() const { return 0; }
  virtual void on_timer(SimTime now, AuditContext& ctx) {
    (void)now;
    (void)ctx;
  }

  /// Blocking auditors run their analysis before the VM resumes; their
  /// audit cost is charged to the guest. Non-blocking (default) auditors
  /// run in parallel inside their container.
  virtual bool blocking() const { return false; }

  /// Architectural-invariant auditors (TSS integrity and kin) are the
  /// guaranteed-execution core of the monitor: the degradation ladder never
  /// sheds their events, even in invariant-only mode, so the paper's
  /// hardware-invariant checks keep running under monitor overload.
  virtual bool architectural() const { return false; }

  /// Cycle cost of analyzing one event (charged to the guest only when
  /// blocking; tracked as container CPU time otherwise).
  virtual Cycles audit_cost_cycles() const { return 900; }
};

}  // namespace hypertap
