#include "core/hypertap.hpp"

#include "journal/journal.hpp"

namespace hypertap {

HyperTap::HyperTap(os::Vm& vm, Options opts)
    : vm_(vm),
      derivation_(vm.machine.hypervisor(), vm.kernel.layout()),
      ctx_(vm.machine.hypervisor(), derivation_, alarms_),
      em_(opts.multiplexer) {
  ctx_.set_clock([&m = vm.machine]() { return m.now(); });
  forwarder_ = std::make_unique<EventForwarder>(
      vm.machine.hypervisor(), em_, ctx_, opts.forwarder);
  if (opts.enable_rhc) {
    rhc_ = std::make_unique<Rhc>(opts.rhc);
    em_.set_rhc(rhc_.get());
    rhc_->start(vm.machine);
  }
}

HyperTap::~HyperTap() {
  // The log tap captures this VM's clock; it must not outlive us.
  if (telemetry_ != nullptr && log_tap_ >= 0) {
    telemetry_->flight.detach_log_capture(log_tap_);
  }
}

void HyperTap::set_telemetry(telemetry::Telemetry* telemetry, int vm_id) {
  if (telemetry_ != nullptr && log_tap_ >= 0) {
    telemetry_->flight.detach_log_capture(log_tap_);
    log_tap_ = -1;
  }
  telemetry_ = telemetry;
  vm_id_ = vm_id;
  vm_.machine.hypervisor().engine().set_telemetry(telemetry, vm_id);
  forwarder_->set_telemetry(telemetry, vm_id);
  em_.set_telemetry(telemetry, vm_id);
  if (rhc_) rhc_->set_telemetry(telemetry, vm_id);
  if (telemetry == nullptr) return;

  // WARN+ log lines land in the flight ring, stamped with this VM's
  // simulated time.
  log_tap_ = telemetry->flight.attach_log_capture(
      vm_id, [&m = vm_.machine]() { return m.now(); });

  // Every alarm: count it (per type — alarms are cold, so the registry
  // lookup here is fine), mark the trace, append it to the flight ring,
  // and dump the ring so the moments leading up to the alarm survive.
  // Subscribed once; re-wiring swaps telemetry_ under the same lambda.
  if (alarm_sub_installed_) return;
  alarm_sub_installed_ = true;
  alarms_.subscribe([this](const Alarm& a) {
    telemetry::Telemetry* t = telemetry_;
    if (t == nullptr) return;
    t->registry
        .counter("ht_alarms_total",
                 {{"type", a.type}, {"vm", std::to_string(vm_id_)}})
        ->inc();
    t->tracer.instant(vm_id_, telemetry::kMonitorTrack, "alarm", "alarm",
                      a.time, a.type + ": " + a.detail);
    t->flight.record(vm_id_, telemetry::FlightRecorder::EntryKind::kAlarm,
                     a.time, "alarm", a.auditor + "/" + a.type + ": " + a.detail);
    t->flight.trigger(vm_id_, a.time, "alarm:" + a.type);
  });
}

void HyperTap::attach_journal(journal::JournalWriter* writer) {
  journal_ = writer;
  forwarder_->set_journal(writer);
  em_.set_journal(writer);
  if (writer != nullptr && telemetry_ != nullptr) {
    writer->set_telemetry(telemetry_, vm_id_);
  }
  if (writer == nullptr || journal_sub_installed_) return;
  journal_sub_installed_ = true;
  // Alarms are the replay oracle's ground truth: the recorded sequence is
  // what a later replay must reproduce byte for byte. Subscribed once;
  // re-attaching swaps journal_ under the same lambda.
  alarms_.subscribe([this](const Alarm& a) {
    if (journal_ != nullptr) journal_->append_alarm(a);
  });
}

void HyperTap::add_auditor(std::unique_ptr<Auditor> auditor) {
  Auditor* a = auditor.get();
  auditors_.push_back(std::move(auditor));
  em_.register_auditor(a, ctx_);
  forwarder_->set_mask(em_.combined_mask());

  const SimTime period = a->timer_period();
  if (period > 0) {
    vm_.machine.schedule_every(period, [this, a]() {
      // Stop the timer chain if the auditor has been removed.
      bool alive = false;
      for (const auto& owned : auditors_) {
        if (owned.get() == a) alive = true;
      }
      if (!alive) return false;
      // Supervised dispatch: a throwing or quarantined auditor must not
      // take the timer wheel (or the simulation loop) down with it.
      em_.dispatch_timer(a, vm_.machine.now(), ctx_);
      return true;
    });
  }
}

void HyperTap::remove_auditor(const Auditor* auditor) {
  em_.unregister_auditor(auditor);
  std::erase_if(auditors_, [auditor](const std::unique_ptr<Auditor>& p) {
    return p.get() == auditor;
  });
  forwarder_->set_mask(em_.combined_mask());
}

}  // namespace hypertap
