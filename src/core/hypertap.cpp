#include "core/hypertap.hpp"

namespace hypertap {

HyperTap::HyperTap(os::Vm& vm, Options opts)
    : vm_(vm),
      derivation_(vm.machine.hypervisor(), vm.kernel.layout()),
      ctx_(vm.machine.hypervisor(), derivation_, alarms_),
      em_(opts.multiplexer) {
  ctx_.set_clock([&m = vm.machine]() { return m.now(); });
  forwarder_ = std::make_unique<EventForwarder>(
      vm.machine.hypervisor(), em_, ctx_, opts.forwarder);
  if (opts.enable_rhc) {
    rhc_ = std::make_unique<Rhc>(opts.rhc);
    em_.set_rhc(rhc_.get());
    rhc_->start(vm.machine);
  }
}

void HyperTap::add_auditor(std::unique_ptr<Auditor> auditor) {
  Auditor* a = auditor.get();
  auditors_.push_back(std::move(auditor));
  em_.register_auditor(a, ctx_);
  forwarder_->set_mask(em_.combined_mask());

  const SimTime period = a->timer_period();
  if (period > 0) {
    vm_.machine.schedule_every(period, [this, a]() {
      // Stop the timer chain if the auditor has been removed.
      bool alive = false;
      for (const auto& owned : auditors_) {
        if (owned.get() == a) alive = true;
      }
      if (!alive) return false;
      // Supervised dispatch: a throwing or quarantined auditor must not
      // take the timer wheel (or the simulation loop) down with it.
      em_.dispatch_timer(a, vm_.machine.now(), ctx_);
      return true;
    });
  }
}

void HyperTap::remove_auditor(const Auditor* auditor) {
  em_.unregister_auditor(auditor);
  std::erase_if(auditors_, [auditor](const std::unique_ptr<Auditor>& p) {
    return p.get() == auditor;
  });
  forwarder_->set_mask(em_.combined_mask());
}

}  // namespace hypertap
