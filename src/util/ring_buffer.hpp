// Lock-free single-producer / single-consumer ring buffer.
//
// This is the data structure backing HyperTap's Event Multiplexer channel
// between the Event Forwarder (producer: the hypervisor exit path) and each
// auditing container (consumer). The simulation itself is single-threaded
// and deterministic, but the buffer is a real concurrent structure and is
// exercised multi-threaded in tests and in bench/em_throughput.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

namespace hvsim::util {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two; one slot is reserved
  /// to distinguish full from empty, so usable capacity is `capacity()`.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return buf_.size() - 1; }

  /// Producer side. Returns false when the ring is full (event dropped —
  /// the Event Multiplexer counts drops per auditor).
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buf_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side, batched: push up to `n` values from `src` with ONE
  /// acquire load of the consumer cursor and ONE release store of the
  /// producer cursor for the whole batch (vs one pair per element on the
  /// unit path). Returns the number actually pushed (< n when the ring
  /// fills). Element order and values are identical to n try_push calls.
  std::size_t try_push_n(const T* src, std::size_t n) {
    if (n == 0) return 0;
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t free = (tail - head - 1) & mask_;
    const std::size_t count = n < free ? n : free;
    if (count == 0) return 0;
    // The contiguous run up to the wrap point, then the remainder.
    const std::size_t first = std::min(count, buf_.size() - head);
    for (std::size_t i = 0; i < first; ++i) buf_[head + i] = src[i];
    for (std::size_t i = first; i < count; ++i) {
      buf_[i - first] = src[i];
    }
    head_.store((head + count) & mask_, std::memory_order_release);
    return count;
  }

  /// Consumer side.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buf_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  /// Consumer side, batched: pop up to `max` values into `dst` with one
  /// acquire/release pair for the whole batch. Returns the number popped.
  /// The delivered sequence is exactly what repeated try_pop would yield.
  std::size_t pop_n(T* dst, std::size_t max) {
    if (max == 0) return 0;
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t avail = (head - tail) & mask_;
    const std::size_t count = max < avail ? max : avail;
    if (count == 0) return 0;
    const std::size_t first = std::min(count, buf_.size() - tail);
    for (std::size_t i = 0; i < first; ++i) dst[i] = std::move(buf_[tail + i]);
    for (std::size_t i = first; i < count; ++i) {
      dst[i] = std::move(buf_[i - first]);
    }
    tail_.store((tail + count) & mask_, std::memory_order_release);
    return count;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace hvsim::util
