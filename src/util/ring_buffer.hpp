// Lock-free single-producer / single-consumer ring buffer.
//
// This is the data structure backing HyperTap's Event Multiplexer channel
// between the Event Forwarder (producer: the hypervisor exit path) and each
// auditing container (consumer). The simulation itself is single-threaded
// and deterministic, but the buffer is a real concurrent structure and is
// exercised multi-threaded in tests and in bench/em_throughput.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

namespace hvsim::util {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two; one slot is reserved
  /// to distinguish full from empty, so usable capacity is `capacity()`.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return buf_.size() - 1; }

  /// Producer side. Returns false when the ring is full (event dropped —
  /// the Event Multiplexer counts drops per auditor).
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) return false;
    buf_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) return std::nullopt;
    T value = std::move(buf_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  bool empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

 private:
  std::vector<T> buf_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace hvsim::util
