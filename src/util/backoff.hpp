// Deterministic capped-exponential backoff with stream-seeded jitter.
//
// Every retry loop in the recovery stack (RecoveryManager rungs, the fleet
// supervision tree) backs off between attempts. The jitter exists to
// de-synchronize a fleet of retriers — but in this codebase randomness must
// never depend on thread schedule, so the jitter is a PURE FUNCTION of
// (seed, stream, draw): the same draw of the same stream yields the same
// delay on any thread count, which keeps the serial-vs-sharded
// differential tests byte-identical.
#pragma once

#include "util/types.hpp"

namespace hvsim::util {

/// Capped exponential backoff for 1-based `attempt`:
///   min(initial << min(attempt-1, 30), cap)
/// Hardened edges: attempt <= 0 behaves as attempt 1, initial <= 0 yields 0,
/// and a shift that would overflow SimTime saturates at `cap`.
SimTime capped_backoff(SimTime initial, SimTime cap, int attempt);

/// capped_backoff() scaled by a deterministic jitter factor in
/// [1-frac, 1+frac), clamped back to [1, cap]. frac <= 0 returns the
/// unjittered backoff EXACTLY (bit-for-bit the legacy formula), so callers
/// can default to 0 without perturbing existing schedules. The jitter unit
/// is keyed by stream_seed(stream_seed(seed, stream), draw): one stream per
/// retrier (e.g. per VM), one draw per backoff decision.
SimTime backoff_jitter(SimTime initial, SimTime cap, int attempt, double frac,
                       u64 seed, u64 stream, u64 draw);

}  // namespace hvsim::util
