// Human-readable formatting helpers shared by tests, benches and examples.
#pragma once

#include <string>

#include "util/types.hpp"

namespace hvsim::util {

/// "1.234 ms", "12.0 s", "420 ns" — pick the natural unit.
std::string format_time(SimTime ns);

/// "12.3k", "4.5M" — compact counts for tables.
std::string format_count(u64 n);

}  // namespace hvsim::util
