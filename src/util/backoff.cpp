#include "util/backoff.hpp"

#include <algorithm>
#include <limits>

#include "util/rng.hpp"

namespace hvsim::util {

SimTime capped_backoff(SimTime initial, SimTime cap, int attempt) {
  if (initial <= 0) return 0;
  const int shift = std::clamp(attempt - 1, 0, 30);
  // A shift that would leave the representable range saturates at the cap
  // instead of wrapping into a negative (i.e. immediate) retry delay.
  if (initial > (std::numeric_limits<SimTime>::max() >> shift)) return cap;
  return std::min(initial << shift, cap);
}

SimTime backoff_jitter(SimTime initial, SimTime cap, int attempt, double frac,
                       u64 seed, u64 stream, u64 draw) {
  const SimTime base = capped_backoff(initial, cap, attempt);
  if (frac <= 0.0 || base <= 0) return base;
  const double f = std::min(frac, 1.0);
  // 53 uniform bits -> [0, 1): the standard u64-to-double construction.
  const u64 h = stream_seed(stream_seed(seed, stream), draw);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  const double scaled = static_cast<double>(base) * (1.0 - f + 2.0 * f * u);
  const double capped = std::min(scaled, static_cast<double>(cap));
  return std::max<SimTime>(1, static_cast<SimTime>(capped));
}

}  // namespace hvsim::util
