// Deterministic PRNG used throughout the simulation.
//
// All stochastic behaviour in the simulator (scheduling jitter, device
// latencies, fault-injection sampling, attack timing) flows from instances
// of this generator so that every experiment is reproducible from a seed.
#pragma once

#include <cstdint>
#include <limits>

#include "util/types.hpp"

namespace hvsim::util {

/// Derive the seed of an independent RNG stream from a base seed and a
/// stream index (SplitMix64 over the pair). This is the ONLY sanctioned
/// way to key per-job / per-shard randomness in parallel execution: the
/// stream is a pure function of (base, index), never of which thread runs
/// the job or in what order — which is what makes sharded campaigns
/// bit-identical at any thread count. Deliberately, there is NO global or
/// thread-local default Rng anywhere in this library; all generators are
/// value-owned by the component that consumes them, so shards cannot race
/// on hidden generator state.
u64 stream_seed(u64 base, u64 stream);

/// xoshiro256** seeded through SplitMix64. Small, fast, and good enough for
/// simulation purposes; not cryptographic.
class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  u64 next();

  /// Uniform in [0, bound). bound must be nonzero.
  u64 below(u64 bound);

  /// Uniform integer in [lo, hi] inclusive.
  i64 range(i64 lo, i64 hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller.
  double normal(double mean, double stddev);

  /// Derive an independent child generator (for sub-experiments).
  Rng fork();

 private:
  u64 s_[4];
};

}  // namespace hvsim::util
