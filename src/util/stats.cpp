#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace hvsim::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Samples::add(double x) {
  xs_.push_back(x);
  sorted_ = false;
}

void Samples::sort() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::min() const {
  sort();
  return xs_.empty() ? 0.0 : xs_.front();
}

double Samples::max() const {
  sort();
  return xs_.empty() ? 0.0 : xs_.back();
}

double Samples::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("percentile of empty sample set");
  sort();
  if (p <= 0) return xs_.front();
  if (p >= 100) return xs_.back();
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

double Samples::cdf_at(double x) const {
  sort();
  if (xs_.empty()) return 0.0;
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  return static_cast<double>(it - xs_.begin()) /
         static_cast<double>(xs_.size());
}

std::vector<double> Samples::cdf(const std::vector<double>& grid) const {
  std::vector<double> out;
  out.reserve(grid.size());
  for (double g : grid) out.push_back(cdf_at(g));
  return out;
}

std::string format_double(double v, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << v;
  return os.str();
}

std::string percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) w[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i)
      w[i] = std::max(w[i], row[i].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "| " << row[i] << std::string(w[i] - row[i].size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_row(headers_);
  for (std::size_t i = 0; i < headers_.size(); ++i)
    os << "|" << std::string(w[i] + 2, '-');
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace hvsim::util
