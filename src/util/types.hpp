// Common scalar types shared by every layer of the simulator.
//
// The simulated guest is a 32-bit x86-style machine: guest virtual and
// guest physical addresses are 32 bits wide, pages are 4 KiB, and the
// paging structures are the classic two-level page directory / page table.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hvsim {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Guest virtual address.
using Gva = u32;
/// Guest physical address.
using Gpa = u32;

/// Simulated time in nanoseconds since machine power-on.
using SimTime = i64;

/// CPU cycles (converted to SimTime through CPU_HZ).
using Cycles = u64;

inline constexpr u32 PAGE_SHIFT = 12;
inline constexpr u32 PAGE_SIZE = 1u << PAGE_SHIFT;
inline constexpr u32 PAGE_MASK = PAGE_SIZE - 1;

/// Simulated CPU frequency: 3 GHz (the paper's testbed is an i5 3.07 GHz).
inline constexpr u64 CPU_HZ = 3'000'000'000ull;

/// Convert a cycle count to simulated nanoseconds (rounding up so that
/// nonzero work always advances time).
constexpr SimTime cycles_to_ns(Cycles c) {
  return static_cast<SimTime>((c * 1'000'000'000ull + CPU_HZ - 1) / CPU_HZ);
}

constexpr Cycles ns_to_cycles(SimTime ns) {
  return static_cast<Cycles>(ns) * CPU_HZ / 1'000'000'000ull;
}

constexpr SimTime operator""_us(unsigned long long v) {
  return static_cast<SimTime>(v) * 1'000;
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return static_cast<SimTime>(v) * 1'000'000;
}
constexpr SimTime operator""_s(unsigned long long v) {
  return static_cast<SimTime>(v) * 1'000'000'000;
}

constexpr Gpa page_base(Gpa a) { return a & ~PAGE_MASK; }
constexpr u32 page_offset(u32 a) { return a & PAGE_MASK; }
constexpr u32 page_number(Gpa a) { return a >> PAGE_SHIFT; }

}  // namespace hvsim
