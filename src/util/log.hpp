// Minimal severity-filtered logging for the library. Off by default so the
// benches stay quiet; tests and examples can raise the level.
//
// Output is routed through a pluggable sink: by default lines go to
// stderr, but a sink installed with set_log_sink() (e.g. the telemetry
// layer's sim-time/VM-id-stamping sink) replaces that. Independent of the
// sink, any number of taps (add_log_tap) observe every line that passes
// the level filter — the flight recorder uses a tap to capture WARN+
// lines into its ring so dumps carry the log tail.
#pragma once

#include <atomic>
#include <functional>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

namespace hvsim::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace detail {
// The level gate is read on every HVSIM_LOG site from every thread (the
// async channel consumer, campaign shard workers); an atomic keeps the
// hot read one relaxed load and TSan-clean against a concurrent
// set_log_level() from a test fixture or the main thread.
inline std::atomic<LogLevel>& log_level_ref() {
  static std::atomic<LogLevel> level{LogLevel::kWarn};
  return level;
}
}  // namespace detail

inline LogLevel log_level() {
  return detail::log_level_ref().load(std::memory_order_relaxed);
}

inline void set_log_level(LogLevel lvl) {
  detail::log_level_ref().store(lvl, std::memory_order_relaxed);
}

inline const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "OFF";
  }
}

using LogFn = std::function<void(LogLevel, const std::string&)>;

/// Shared dispatch state. Logging is cold (filtered first), so one mutex
/// around sink + taps is fine even with the async channel's consumer
/// thread logging.
struct LogDispatch {
  std::mutex mu;
  LogFn sink;  ///< null => stderr
  std::vector<std::pair<int, LogFn>> taps;
  int next_tap_id = 1;
};

inline LogDispatch& log_dispatch() {
  static LogDispatch d;
  return d;
}

/// Replace the primary output (nullptr restores the stderr default).
inline void set_log_sink(LogFn sink) {
  auto& d = log_dispatch();
  std::lock_guard<std::mutex> lk(d.mu);
  d.sink = std::move(sink);
}

/// Observe every line passing the level filter; returns a handle for
/// remove_log_tap(). Taps must not log (re-entrancy).
inline int add_log_tap(LogFn tap) {
  auto& d = log_dispatch();
  std::lock_guard<std::mutex> lk(d.mu);
  const int id = d.next_tap_id++;
  d.taps.emplace_back(id, std::move(tap));
  return id;
}

inline void remove_log_tap(int id) {
  auto& d = log_dispatch();
  std::lock_guard<std::mutex> lk(d.mu);
  std::erase_if(d.taps, [id](const auto& t) { return t.first == id; });
}

inline void log_line(LogLevel lvl, const std::string& msg) {
  if (lvl < log_level()) return;
  auto& d = log_dispatch();
  std::lock_guard<std::mutex> lk(d.mu);
  if (d.sink) {
    d.sink(lvl, msg);
  } else {
    std::cerr << "[" << level_name(lvl) << "] " << msg << "\n";
  }
  for (const auto& [id, tap] : d.taps) tap(lvl, msg);
}

}  // namespace hvsim::util

#define HVSIM_LOG(lvl, expr)                                         \
  do {                                                               \
    if ((lvl) >= ::hvsim::util::log_level()) {                       \
      std::ostringstream hvsim_log_os_;                              \
      hvsim_log_os_ << expr;                                         \
      ::hvsim::util::log_line((lvl), hvsim_log_os_.str());           \
    }                                                                \
  } while (0)

#define HVSIM_DEBUG(expr) HVSIM_LOG(::hvsim::util::LogLevel::kDebug, expr)
#define HVSIM_INFO(expr) HVSIM_LOG(::hvsim::util::LogLevel::kInfo, expr)
#define HVSIM_WARN(expr) HVSIM_LOG(::hvsim::util::LogLevel::kWarn, expr)
#define HVSIM_ERROR(expr) HVSIM_LOG(::hvsim::util::LogLevel::kError, expr)
