// Minimal severity-filtered logging for the library. Off by default so the
// benches stay quiet; tests and examples can raise the level.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace hvsim::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel& log_level();

inline void set_log_level(LogLevel lvl) { log_level() = lvl; }

inline LogLevel& log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

inline const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "OFF";
  }
}

inline void log_line(LogLevel lvl, const std::string& msg) {
  if (lvl < log_level()) return;
  std::cerr << "[" << level_name(lvl) << "] " << msg << "\n";
}

}  // namespace hvsim::util

#define HVSIM_LOG(lvl, expr)                                         \
  do {                                                               \
    if ((lvl) >= ::hvsim::util::log_level()) {                       \
      std::ostringstream hvsim_log_os_;                              \
      hvsim_log_os_ << expr;                                         \
      ::hvsim::util::log_line((lvl), hvsim_log_os_.str());           \
    }                                                                \
  } while (0)

#define HVSIM_DEBUG(expr) HVSIM_LOG(::hvsim::util::LogLevel::kDebug, expr)
#define HVSIM_INFO(expr) HVSIM_LOG(::hvsim::util::LogLevel::kInfo, expr)
#define HVSIM_WARN(expr) HVSIM_LOG(::hvsim::util::LogLevel::kWarn, expr)
#define HVSIM_ERROR(expr) HVSIM_LOG(::hvsim::util::LogLevel::kError, expr)
