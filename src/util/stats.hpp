// Small statistics toolkit used by the benchmark harnesses: online
// mean/variance (Welford), percentiles, and empirical CDFs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace hvsim::util {

/// Streaming mean / variance / min / max accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A collected sample set supporting percentiles and CDF evaluation.
class Samples {
 public:
  void add(double x);
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  bool empty() const { return xs_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;

  /// Fraction of samples <= x.
  double cdf_at(double x) const;

  /// Evaluate the empirical CDF at each point in `grid`.
  std::vector<double> cdf(const std::vector<double>& grid) const;

  const std::vector<double>& values() const { return xs_; }

 private:
  void sort() const;
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Render a ratio as a fixed-width percentage string, e.g. "12.3%".
std::string percent(double fraction, int decimals = 1);

/// Simple fixed-column table printer for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  /// Format the table; column widths fit the widest cell.
  std::string str() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string format_double(double v, int decimals);

}  // namespace hvsim::util
