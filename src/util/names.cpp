#include "util/names.hpp"

#include <sstream>

#include "util/stats.hpp"

namespace hvsim::util {

std::string format_time(SimTime ns) {
  const double v = static_cast<double>(ns);
  if (ns < 1'000) return format_double(v, 0) + " ns";
  if (ns < 1'000'000) return format_double(v / 1e3, 2) + " us";
  if (ns < 1'000'000'000) return format_double(v / 1e6, 2) + " ms";
  return format_double(v / 1e9, 2) + " s";
}

std::string format_count(u64 n) {
  const double v = static_cast<double>(n);
  if (n < 10'000) {
    std::ostringstream os;
    os << n;
    return os.str();
  }
  if (n < 10'000'000) return format_double(v / 1e3, 1) + "k";
  return format_double(v / 1e6, 1) + "M";
}

}  // namespace hvsim::util
