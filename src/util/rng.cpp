#include "util/rng.hpp"

#include <cmath>

namespace hvsim::util {
namespace {

u64 splitmix64(u64& x) {
  x += 0x9E3779B97F4A7C15ull;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

u64 stream_seed(u64 base, u64 stream) {
  // Two SplitMix64 steps keyed by base, with the stream index folded in
  // between: adjacent indices land in decorrelated states, and collisions
  // across (base, stream) pairs are no likelier than raw 64-bit chance.
  u64 x = base;
  u64 a = splitmix64(x);
  x ^= stream * 0xD1B54A32D192ED03ull + 0x8BB84B93962EACC9ull;
  u64 b = splitmix64(x);
  return a ^ rotl(b, 23);
}

Rng::Rng(u64 seed) {
  u64 sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

u64 Rng::next() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  // Debiased modulo via rejection sampling.
  const u64 threshold = (0 - bound) % bound;
  for (;;) {
    const u64 r = next();
    if (r >= threshold) return r % bound;
  }
}

i64 Rng::range(i64 lo, i64 hi) {
  return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace hvsim::util
