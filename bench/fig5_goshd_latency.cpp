// Fig. 5 — Guest OS Hang Detection latency.
//
// CDF of GOSHD detection latency (fault activation -> alarm), comparing
// the first (partial) hang alarm against the full-hang alarm — showing
// how partial-hang detection buys tens of seconds over waiting for the
// full hang, with >90% of first alarms within ~4-6 s.
//
// Environment: HYPERTAP_FI_STRIDE (default 24).
#include <iostream>

#include "bench_report.hpp"
#include "fi_sweep.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

int main() {
  const auto locations = fi::generate_locations();
  const int stride = htbench::env_int("HYPERTAP_FI_STRIDE", 24);

  std::cerr << "fig5: sweeping with stride " << stride << " ...\n";
  const auto cases = htbench::run_sweep(
      locations, stride, 555, [](std::size_t i, std::size_t n) {
        if (i % 64 == 0) std::cerr << "  " << i << "/" << n << "\n";
      });

  Samples first_alarm_s;   // first (partial) hang detection latency
  Samples full_alarm_s;    // full-hang detection latency
  u64 hangs = 0, fulls = 0;
  for (const auto& c : cases) {
    const auto& r = c.result;
    if (r.first_alarm < 0 || r.activation < 0) continue;
    ++hangs;
    first_alarm_s.add(static_cast<double>(r.first_alarm - r.activation) /
                      1e9);
    if (r.full_alarm >= 0) {
      ++fulls;
      full_alarm_s.add(static_cast<double>(r.full_alarm - r.activation) /
                       1e9);
    }
  }

  std::cout << "FIG 5: GOSHD detection latency CDF (" << hangs
            << " detected hangs, " << fulls << " full hangs)\n";
  std::cout << "latency = fault activation -> GOSHD alarm; threshold 4 s\n\n";
  TablePrinter tp({"Latency (s)", "First-hang CDF (blue)",
                   "Full-hang CDF (red)"});
  for (const double t : {4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0,
                         28.0, 32.0, 40.0}) {
    tp.add_row({format_double(t, 0),
                first_alarm_s.empty()
                    ? "-"
                    : format_double(first_alarm_s.cdf_at(t) * 100.0, 1) + "%",
                full_alarm_s.empty()
                    ? "-"
                    : format_double(full_alarm_s.cdf_at(t) * 100.0, 1) +
                          "%"});
  }
  std::cout << tp.str();

  htbench::BenchReport report("fig5_goshd_latency");
  report.param("stride", stride)
      .param("seed_base", 555)
      .metric("hangs", static_cast<double>(hangs))
      .metric("full_hangs", static_cast<double>(fulls));
  for (const double t : {4.0, 8.0, 16.0, 32.0}) {
    const std::string key = std::to_string(static_cast<int>(t));
    if (!first_alarm_s.empty())
      report.metric("first_alarm_cdf_" + key + "s", first_alarm_s.cdf_at(t));
    if (!full_alarm_s.empty())
      report.metric("full_alarm_cdf_" + key + "s", full_alarm_s.cdf_at(t));
  }
  if (!first_alarm_s.empty()) {
    report.metric("first_alarm_median_s", first_alarm_s.percentile(50))
        .metric("first_alarm_p90_s", first_alarm_s.percentile(90))
        .metric("first_alarm_max_s", first_alarm_s.max());
  }
  if (!full_alarm_s.empty()) {
    report.metric("full_alarm_median_s", full_alarm_s.percentile(50))
        .metric("full_alarm_p90_s", full_alarm_s.percentile(90))
        .metric("full_alarm_max_s", full_alarm_s.max());
  }
  report.write();

  if (!first_alarm_s.empty()) {
    std::cout << "\nfirst-alarm latency:  median "
              << format_double(first_alarm_s.percentile(50), 2) << " s, p90 "
              << format_double(first_alarm_s.percentile(90), 2) << " s, max "
              << format_double(first_alarm_s.max(), 2) << " s\n";
  }
  if (!full_alarm_s.empty()) {
    std::cout << "full-hang latency:    median "
              << format_double(full_alarm_s.percentile(50), 2) << " s, p90 "
              << format_double(full_alarm_s.percentile(90), 2) << " s, max "
              << format_double(full_alarm_s.max(), 2) << " s\n";
    std::cout << "\npaper shape: >90% of hangs detected within ~4 s of "
                 "manifesting; only ~54% of eventual full hangs are full "
                 "after 4 s — partial-hang detection leads by tens of "
                 "seconds.\n";
  }
  return 0;
}
