// Monitor-resilience sweep.
//
// Part 1 sweeps the supervision circuit breaker (failure threshold x
// cooldown) through the monitor fault-injection campaign and reports
// quarantine latency (fault armed -> auditor quarantined) and recovery
// latency (quarantined -> probe succeeded), plus whether the paper's
// three detection scenarios still fire after recovery.
//
// Part 2 sweeps the async-channel overflow policies under a slow
// consumer and reports the loss accounting each policy produces.
//
// Environment: HYPERTAP_RESILIENCE_SEEDS (default 3).
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_report.hpp"
#include "resilience/monitor_fi.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;  // garbage or 0 would crash the percentiles
}

std::string ms(SimTime t) { return format_double(t / 1e6, 1); }

const char* policy_name(AsyncAuditorChannel::OverflowPolicy p) {
  switch (p) {
    case AsyncAuditorChannel::OverflowPolicy::kDropNewest:
      return "drop-newest";
    case AsyncAuditorChannel::OverflowPolicy::kDropOldest:
      return "drop-oldest";
    case AsyncAuditorChannel::OverflowPolicy::kBlockWithTimeout:
      return "block-timeout";
  }
  return "?";
}

}  // namespace

int main() {
  const int seeds = env_int("HYPERTAP_RESILIENCE_SEEDS", 3);

  std::cout << "MONITOR RESILIENCE: breaker sweep (" << seeds
            << " seeds per cell)\n";
  std::cout << "campaign: crash HRKD/HT-Ninja/GOSHD repeatedly, then rerun "
               "the paper attacks\n\n";
  TablePrinter tp({"Threshold", "Cooldown (ms)", "Quarantine p50/p90 (ms)",
                   "Recovery p50/p90 (ms)", "Detect after",
                   "False pos"});
  htbench::BenchReport report("resilience_sweep");
  report.param("seeds", seeds);
  for (const u32 threshold : {2u, 3u, 5u}) {
    for (const SimTime cooldown :
         {SimTime{200'000'000}, SimTime{500'000'000},
          SimTime{1'000'000'000}}) {
      Samples quarantine, recovery;
      bool all_detect = true, any_fp = false;
      for (int s = 0; s < seeds; ++s) {
        resilience::CampaignConfig cfg;
        cfg.seed = 100 + s;
        cfg.failure_threshold = threshold;
        cfg.cooldown = cooldown;
        const auto res = resilience::run_monitor_campaign(cfg);
        for (SimTime t : res.quarantine_latency)
          quarantine.add(static_cast<double>(t));
        for (SimTime t : res.recovery_latency)
          recovery.add(static_cast<double>(t));
        all_detect = all_detect && res.hrkd_detected_post_recovery &&
                     res.ped_detected_post_recovery &&
                     res.goshd_detected_post_recovery &&
                     res.all_breakers_closed;
        any_fp = any_fp || res.false_positive;
      }
      tp.add_row({std::to_string(threshold), ms(cooldown),
                  ms(static_cast<SimTime>(quarantine.percentile(50))) + " / " +
                      ms(static_cast<SimTime>(quarantine.percentile(90))),
                  ms(static_cast<SimTime>(recovery.percentile(50))) + " / " +
                      ms(static_cast<SimTime>(recovery.percentile(90))),
                  all_detect ? "yes" : "NO", any_fp ? "YES" : "no"});
      const std::string key = "breaker_t" + std::to_string(threshold) +
                              "_c" + std::to_string(cooldown / 1'000'000) +
                              "ms";
      report.metric(key + ".quarantine_p50_ms",
                    quarantine.percentile(50) / 1e6)
          .metric(key + ".quarantine_p90_ms",
                  quarantine.percentile(90) / 1e6)
          .metric(key + ".recovery_p50_ms", recovery.percentile(50) / 1e6)
          .metric(key + ".recovery_p90_ms", recovery.percentile(90) / 1e6)
          .metric(key + ".detect_after", all_detect ? 1.0 : 0.0)
          .metric(key + ".false_positive", any_fp ? 1.0 : 0.0);
    }
  }
  std::cout << tp.str();
  std::cout << "\nquarantine latency ~ events-to-threshold; recovery "
               "latency ~ cooldown + time to the next probe-able event.\n\n";

  std::cout << "OVERFLOW POLICY: slow consumer (20 us/event), ring 32, "
               "20k events\n\n";
  TablePrinter cp({"Policy", "Audited", "Dropped", "Oldest", "Newest",
                   "Timeouts", "Gaps signalled"});
  for (const auto policy :
       {AsyncAuditorChannel::OverflowPolicy::kDropNewest,
        AsyncAuditorChannel::OverflowPolicy::kDropOldest,
        AsyncAuditorChannel::OverflowPolicy::kBlockWithTimeout}) {
    resilience::ChannelStressConfig cfg;
    cfg.policy = policy;
    cfg.ring_capacity = 32;
    cfg.events = 20'000;
    cfg.audit_stall = std::chrono::microseconds{20};
    const auto res = resilience::run_channel_stress(cfg);
    cp.add_row({policy_name(policy), std::to_string(res.stats.audited),
                std::to_string(res.stats.dropped),
                std::to_string(res.stats.dropped_oldest),
                std::to_string(res.stats.dropped_newest),
                std::to_string(res.stats.block_timeouts),
                std::to_string(res.stats.gaps_signalled)});
    const std::string key = std::string("overflow.") + policy_name(policy);
    report.metric(key + ".audited", static_cast<double>(res.stats.audited))
        .metric(key + ".dropped", static_cast<double>(res.stats.dropped))
        .metric(key + ".gaps_signalled",
                static_cast<double>(res.stats.gaps_signalled));
  }
  std::cout << cp.str();

  std::cout << "\nSTALL WATCHDOG: consumer wedged 2 x 150 ms, deadline 40 "
               "ms\n\n";
  resilience::ChannelStressConfig scfg;
  scfg.ring_capacity = 16;
  scfg.events = 400;
  scfg.audit_stall = std::chrono::milliseconds{150};
  scfg.stall_burst = 2;
  scfg.drain_deadline = std::chrono::milliseconds{40};
  scfg.publish_gap = std::chrono::milliseconds{1};
  const auto sres = resilience::run_channel_stress(scfg);
  std::cout << "stall detected:      "
            << (sres.stall_detected ? "yes" : "NO") << "\n"
            << "consumer recovered:  "
            << (sres.consumer_recovered ? "yes" : "NO") << "\n"
            << "sync-delivered:      " << sres.stats.sync_delivered << "\n"
            << "dropped (lock held): " << sres.stats.dropped_stalled << "\n"
            << "gaps signalled:      " << sres.stats.gaps_signalled << "\n";

  report.metric("stall.detected", sres.stall_detected ? 1.0 : 0.0)
      .metric("stall.consumer_recovered",
              sres.consumer_recovered ? 1.0 : 0.0)
      .metric("stall.sync_delivered",
              static_cast<double>(sres.stats.sync_delivered))
      .metric("stall.dropped_stalled",
              static_cast<double>(sres.stats.dropped_stalled));
  report.write();
  return 0;
}
