// Table II — Real-world rootkits evaluated with HRKD (all detected).
//
// For each rootkit in the catalog: hide a running process, then report
// which views lose it (in-guest ps, VMI task-list walk) and whether HRKD
// flags the hidden task. Also reports the Fig. 3A process-counting
// cross-view numbers (trusted address-space count vs in-guest count).
#include <algorithm>
#include <iostream>

#include "attacks/rootkit.hpp"
#include "bench_report.hpp"
#include "auditors/hrkd.hpp"
#include "core/hypertap.hpp"
#include "util/stats.hpp"
#include "vmi/introspect.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::TablePrinter;

namespace {

class Busy final : public os::Workload {
 public:
  os::Action next(os::TaskCtx&) override {
    if ((i_ ^= 1) != 0) return os::ActCompute{700'000};
    return os::ActSyscall{os::SYS_GETPID};
  }
  std::string name() const override { return "malware"; }
  int i_ = 0;
};

}  // namespace

int main() {
  std::cout << "TABLE II: rootkits evaluated with HRKD\n\n";
  TablePrinter tp({"Rootkit", "Target OS", "Hiding technique(s)",
                   "ps sees it", "VMI sees it", "trusted/ps count",
                   "HRKD verdict"});

  htbench::BenchReport report("table2_hrkd_rootkits");
  u64 evaluated = 0, detected_count = 0;
  bool all_detected = true;
  for (const auto& spec : attacks::rootkit_catalog()) {
    // Match the guest flavor to the rootkit's target OS, as in the paper:
    // Windows guests use the INT 0x2E syscall convention.
    os::KernelConfig kc;
    if (spec.target_os.rfind("Win", 0) == 0) {
      kc.fast_syscalls = false;
      kc.syscall_vector = os::SYSCALL_INT_VECTOR_NT;
    }
    os::Vm vm(hv::MachineConfig{}, kc);
    HyperTap ht(vm);
    auto hrkd_owned = std::make_unique<auditors::Hrkd>(
        auditors::Hrkd::Config{},
        [&k = vm.kernel]() { return k.in_guest_view_pids(); });
    auto* hrkd = hrkd_owned.get();
    ht.add_auditor(std::move(hrkd_owned));
    vm.kernel.boot();
    const u32 pid =
        vm.kernel.spawn("malware", 1000, 1000, 1, std::make_unique<Busy>());
    // A few visible peers.
    for (int i = 0; i < 3; ++i)
      vm.kernel.spawn("app" + std::to_string(i), 1000, 1000, 1,
                      std::make_unique<Busy>());
    vm.machine.run_for(1'000'000'000);

    attacks::Rootkit rk(vm.kernel, spec);
    rk.hide(pid);
    vm.machine.run_for(2'000'000'000);

    vmi::Introspector vmi(vm.machine.hypervisor(), vm.kernel.layout());
    const auto guest_view = vm.kernel.in_guest_view_pids();
    const auto vmi_view = vmi.list_pids();
    const bool in_ps =
        std::count(guest_view.begin(), guest_view.end(), pid) > 0;
    const bool in_vmi =
        std::count(vmi_view.begin(), vmi_view.end(), pid) > 0;
    const bool flagged = hrkd->hidden_pids().count(pid) != 0;
    all_detected = all_detected && flagged;
    ++evaluated;
    if (flagged) ++detected_count;
    std::string slug = spec.name;
    for (char& c : slug) {
      if (c == ' ' || c == '\'') c = '_';
    }
    report.metric(slug + ".detected", flagged ? 1.0 : 0.0);

    // Fig. 3A process counting: trusted address-space count vs the
    // number of user processes the guest admits to.
    const u32 trusted = hrkd->count_address_spaces(ht.context());
    u32 guest_user_procs = 0;
    for (const u32 p : guest_view) {
      const os::Task* t = vm.kernel.find_task(p);
      if (t != nullptr && !t->is_kthread()) ++guest_user_procs;
    }

    std::string techniques;
    for (const auto t : spec.techniques) {
      if (!techniques.empty()) techniques += ", ";
      techniques += to_string(t);
    }
    tp.add_row({spec.name, spec.target_os, techniques,
                in_ps ? "yes" : "no", in_vmi ? "yes" : "no",
                std::to_string(trusted) + "/" +
                    std::to_string(guest_user_procs),
                flagged ? "DETECTED" : "MISSED"});
  }
  std::cout << tp.str();
  std::cout << "\nAll rootkits detected: " << (all_detected ? "YES" : "NO")
            << " (paper: all detected)\n";
  std::cout << "A trusted count exceeding the in-guest count reveals "
               "hidden address spaces regardless of hiding technique.\n";

  report.metric("rootkits_evaluated", static_cast<double>(evaluated))
      .metric("rootkits_detected", static_cast<double>(detected_count))
      .metric("all_detected", all_detected ? 1.0 : 0.0);
  report.write();
  return all_detected ? 0 : 1;
}
