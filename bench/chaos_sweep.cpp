// Chaos sweep: detection coverage and false-alarm rate vs delivery-fault
// rate, with the ingress hardening on vs off.
//
// The ChaosEngine sits between the Event Forwarder and the Event
// Multiplexer and injects drop / duplicate / reorder / corrupt / delay
// faults at a per-event rate. Two arms per rate:
//   hardened   — multiplexer dedup + DeliveryGuard (checksum validation,
//                bounded reorder buffer, gap synthesis feeding on_gap)
//   unhardened — raw delivery: whatever survives the faults is audited
//
// Coverage cells arm a lock-leak fault at a hang-manifesting location and
// ask whether GOSHD still detects the hang (coverage over hangs the
// external probe confirms); false-alarm cells arm nothing and ask whether
// GOSHD stays silent. Binary hang coverage is expected to degrade
// gracefully — an absence-based detector tolerates random loss by
// construction — so the sweep also reports the evidence-integrity gap:
// auditor exceptions absorbed (corrupted events crashing GOSHD raw),
// corrupted events audited vs dropped, and duplicate audits suppressed.
//
// Environment: HYPERTAP_CHAOS_SEEDS (default 1).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "fi/campaign.hpp"
#include "fi/locations.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

/// A location id no generated location uses: the fault never arms, so any
/// GOSHD alarm in these runs is a false alarm by construction.
constexpr u16 kNoFaultLocation = 9999;

struct Cell {
  double coverage = 0.0;        ///< detected / manifested hangs (probe truth)
  double false_alarm = 0.0;     ///< alarmed / fault-free runs
  double chaos_faults = 0.0;    ///< injected faults per run (mean)
  double auditor_faults = 0.0;  ///< auditor exceptions absorbed per run
  double corrupted_dropped = 0.0;
  double dups_suppressed = 0.0;
  double gaps_signaled = 0.0;
};

}  // namespace

int main() {
  const int seeds = env_int("HYPERTAP_CHAOS_SEEDS", 1);
  const auto locations = fi::generate_locations(2014);

  struct Combo {
    fi::WorkloadKind workload;
    u16 location;
  };
  // Hang-manifesting cells (same ones the recovery suite pins down).
  const std::vector<Combo> detect_combos = {
      {fi::WorkloadKind::kMakeJ2, 5},
      {fi::WorkloadKind::kHanoi, 3},
  };
  const std::vector<double> rates = {0.0, 0.01, 0.05, 0.2};

  std::cout << "CHAOS SWEEP: GOSHD coverage / false alarms vs delivery-fault "
            << "rate (" << seeds << " seed" << (seeds == 1 ? "" : "s")
            << " per cell)\n";
  std::cout << "faults per event: drop, duplicate, reorder, corrupt, delay — "
            << "each at the listed rate\n\n";

  TablePrinter tp({"Fault rate", "Hardening", "Coverage", "False alarms",
                   "Auditor faults", "Corrupt dropped", "Dups suppressed",
                   "Gaps"});
  htbench::BenchReport report("chaos_sweep");
  report.param("seeds", seeds);

  double baseline_coverage = -1.0;
  std::vector<std::pair<std::string, Cell>> cells;
  for (const double rate : rates) {
    for (const bool harden : {true, false}) {
      Cell cell;
      int manifested = 0, detected = 0, clean_runs = 0, false_alarms = 0;
      int runs = 0;
      for (const Combo& combo : detect_combos) {
        for (const bool armed : {true, false}) {
          for (int s = 0; s < seeds; ++s) {
            fi::RunConfig cfg;
            cfg.workload = combo.workload;
            cfg.location = armed ? combo.location : kNoFaultLocation;
            cfg.fault_class = os::FaultClass::kMissingRelease;
            cfg.transient = true;
            cfg.seed = 11 + 7ull * static_cast<u64>(s);
            // Same chaos seed for both arms: the hardened and unhardened
            // runs face the identical fault stream (paired comparison).
            cfg.chaos = chaos::ChaosConfig::uniform(rate, 0xC7A05u ^ cfg.seed);
            cfg.harden_delivery = harden;
            const fi::RunResult res = fi::run_one(cfg, locations);
            ++runs;
            if (armed) {
              // Coverage over hangs that actually manifested (the external
              // probe is ground truth): an activated fault that never hangs
              // the guest leaves nothing for GOSHD to detect.
              if (res.activated && res.probe_hang) {
                ++manifested;
                if (res.first_alarm > 0) ++detected;
              }
            } else {
              ++clean_runs;
              if (res.first_alarm > 0) ++false_alarms;
            }
            cell.chaos_faults += static_cast<double>(res.chaos_faults);
            cell.auditor_faults += static_cast<double>(res.auditor_faults);
            cell.corrupted_dropped +=
                static_cast<double>(res.corrupted_dropped);
            cell.dups_suppressed +=
                static_cast<double>(res.duplicates_suppressed);
            cell.gaps_signaled += static_cast<double>(res.gaps_signaled);
          }
        }
      }
      cell.coverage = manifested > 0
                          ? static_cast<double>(detected) / manifested
                          : 0.0;
      cell.false_alarm = clean_runs > 0
                             ? static_cast<double>(false_alarms) / clean_runs
                             : 0.0;
      cell.chaos_faults /= runs;
      cell.auditor_faults /= runs;
      cell.corrupted_dropped /= runs;
      cell.dups_suppressed /= runs;
      cell.gaps_signaled /= runs;
      if (rate == 0.0 && harden && baseline_coverage < 0) {
        baseline_coverage = cell.coverage;
      }

      tp.add_row({format_double(rate * 100, 1) + "%",
                  harden ? "on" : "off",
                  format_double(cell.coverage * 100, 1) + "%",
                  format_double(cell.false_alarm * 100, 1) + "%",
                  format_double(cell.auditor_faults, 1),
                  format_double(cell.corrupted_dropped, 1),
                  format_double(cell.dups_suppressed, 1),
                  format_double(cell.gaps_signaled, 1)});
      const std::string key =
          "rate_" + std::to_string(static_cast<int>(rate * 1000)) + "permil." +
          (harden ? "hardened" : "unhardened");
      cells.emplace_back(key, cell);
    }
  }
  std::cout << tp.str();

  for (const auto& [key, cell] : cells) {
    report.metric(key + ".coverage", cell.coverage)
        .metric(key + ".false_alarm_rate", cell.false_alarm)
        .metric(key + ".chaos_faults_mean", cell.chaos_faults)
        .metric(key + ".auditor_faults_mean", cell.auditor_faults)
        .metric(key + ".corrupted_dropped_mean", cell.corrupted_dropped)
        .metric(key + ".duplicates_suppressed_mean", cell.dups_suppressed)
        .metric(key + ".gaps_signaled_mean", cell.gaps_signaled);
  }
  report.metric("baseline_coverage", baseline_coverage);
  report.write();

  std::cout << "\nHardening keeps corrupted events (stale checksums) away "
               "from the auditors and converts drops/reorders into explicit "
               "on_gap resyncs; unhardened runs audit damaged evidence "
               "directly — every 'auditor fault' above is GOSHD throwing on "
               "a corrupted payload, absorbed only by the supervision "
               "breaker. Hang coverage itself degrades gracefully in both "
               "arms: an absence-based detector is robust to random loss.\n";
  return 0;
}
