// Recovery sweep: MTTR vs checkpoint period for the closed detect→recover
// loop (fi::Campaign with enable_recovery).
//
// For each checkpoint period the sweep injects the recoverable fault
// classes into lock-heavy locations under three workloads and reports how
// many runs reach the kRecovered outcome, the MTTR distribution
// (detection → remediation declared good), the average number of ladder
// rungs spent, and the snapshot bytes the checkpointer captured — i.e.
// the availability/overhead trade the operator actually tunes.
//
// Environment: HYPERTAP_RECOVERY_SEEDS (default 1).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "fi/campaign.hpp"
#include "fi/locations.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

namespace {

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const int n = std::atoi(v);
  return n > 0 ? n : fallback;
}

std::string ms(double t) { return format_double(t / 1e6, 1); }

struct Combo {
  fi::WorkloadKind workload;
  u16 location;
};

}  // namespace

int main() {
  const int seeds = env_int("HYPERTAP_RECOVERY_SEEDS", 1);
  const auto locations = fi::generate_locations(2014);

  // Lock-heavy locations where every class below manifests as a hang the
  // monitors detect (the same cells the recovery unit tests pin down).
  const std::vector<Combo> combos = {
      {fi::WorkloadKind::kMakeJ2, 5},
      {fi::WorkloadKind::kHanoi, 3},
      {fi::WorkloadKind::kHttpd, 3},
  };
  const std::vector<os::FaultClass> classes = {
      os::FaultClass::kMissingRelease,
      os::FaultClass::kMissingPair,
      os::FaultClass::kMissingIrqRestore,
  };

  std::cout << "RECOVERY SWEEP: MTTR vs checkpoint period (" << seeds
            << " seed" << (seeds == 1 ? "" : "s") << " per cell, "
            << combos.size() * classes.size()
            << " workload x class cells)\n";
  std::cout << "ladder: kill task -> restore last-good checkpoint -> "
               "cold reboot; auditors resync after every rung\n\n";

  TablePrinter tp({"Period (ms)", "Recovered", "MTTR p50/p90 (ms)",
                   "Rungs (mean)", "Snapshot MB (mean)", "Post alarms"});
  htbench::BenchReport report("recovery_sweep");
  report.param("seeds", seeds);
  for (const SimTime period :
       {SimTime{500'000'000}, SimTime{1'000'000'000}, SimTime{2'000'000'000},
        SimTime{4'000'000'000}, SimTime{8'000'000'000}}) {
    Samples mttr;
    int total = 0, recovered = 0, post_alarms = 0;
    double rungs = 0.0, snapshot_mb = 0.0;
    for (const Combo& combo : combos) {
      for (const os::FaultClass cls : classes) {
        for (int s = 0; s < seeds; ++s) {
          fi::RunConfig cfg;
          cfg.workload = combo.workload;
          cfg.location = combo.location;
          cfg.fault_class = cls;
          cfg.transient = true;
          cfg.seed = 11 + 7ull * static_cast<u64>(s);
          cfg.enable_recovery = true;
          cfg.checkpoint_period = period;
          const fi::RunResult res = fi::run_one(cfg, locations);
          ++total;
          if (res.outcome == fi::Outcome::kRecovered) ++recovered;
          if (res.post_recovery_alarm) ++post_alarms;
          if (res.mttr >= 0) mttr.add(static_cast<double>(res.mttr));
          rungs += res.remediations;
          snapshot_mb += static_cast<double>(res.checkpoint_bytes) / 1e6;
        }
      }
    }
    tp.add_row({ms(static_cast<double>(period)),
                std::to_string(recovered) + "/" + std::to_string(total),
                mttr.count() == 0
                    ? std::string("-")
                    : ms(mttr.percentile(50)) + " / " + ms(mttr.percentile(90)),
                format_double(rungs / total, 2),
                format_double(snapshot_mb / total, 1),
                post_alarms == 0 ? "no" : std::to_string(post_alarms)});
    const std::string key =
        "period_" + std::to_string(period / 1'000'000) + "ms";
    report.metric(key + ".total", total)
        .metric(key + ".recovered", recovered)
        .metric(key + ".rungs_mean", rungs / total)
        .metric(key + ".snapshot_mb_mean", snapshot_mb / total)
        .metric(key + ".post_recovery_alarms", post_alarms);
    if (mttr.count() > 0) {
      report.metric(key + ".mttr_p50_ms", mttr.percentile(50) / 1e6)
          .metric(key + ".mttr_p90_ms", mttr.percentile(90) / 1e6);
    }
  }
  std::cout << tp.str();
  report.write();
  std::cout << "\nMTTR is dominated by the confirm window plus the ladder; "
               "longer periods cost extra restore rewind (more lost work) "
               "but capture proportionally fewer snapshot bytes.\n";
  return 0;
}
