// Fig. 7 — Performance overhead of HyperTap's sample monitors on a
// UnixBench-like suite.
//
// Each benchmark runs to completion under four configurations:
//   baseline            no monitoring (VMCS controls at their defaults)
//   HRKD                context-switch interception only
//   HT-Ninja            context-switch + syscall interception + checks
//   HRKD+HT-Ninja+GOSHD all three sample monitors (the paper's "all")
// and we report the relative slowdown. The paper's headline shape: CPU
// < 2%, disk I/O < 5%, context switching ~10%, syscalls ~19%; running all
// three costs about as much as the most expensive one — NOT the sum —
// because the logging channel is shared.
//
// Environment: HYPERTAP_RUNS (default 3; paper averaged 5).
#include <cstdlib>
#include <iostream>
#include <memory>

#include "auditors/goshd.hpp"
#include "bench_report.hpp"
#include "auditors/hrkd.hpp"
#include "auditors/ped.hpp"
#include "core/hypertap.hpp"
#include "util/stats.hpp"
#include "workloads/unixbench.hpp"
#include "workloads/workload.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

namespace {

enum class MonitorConfig : int { kBaseline = 0, kHrkd, kHtNinja, kAllThree };


int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

/// Run one benchmark under one configuration; returns completion seconds.
double run_once(const workloads::UnixBenchSpec& spec, MonitorConfig mc,
                u64 seed) {
  hv::MachineConfig machine_cfg;
  machine_cfg.seed = seed;
  os::KernelConfig kernel_cfg;
  kernel_cfg.spawn_factory = workloads::standard_factory(nullptr);
  os::Vm vm(machine_cfg, kernel_cfg);

  HyperTap ht(vm);
  if (mc == MonitorConfig::kHrkd || mc == MonitorConfig::kAllThree) {
    ht.add_auditor(std::make_unique<auditors::Hrkd>(
        auditors::Hrkd::Config{},
        [&k = vm.kernel]() { return k.in_guest_view_pids(); }));
  }
  if (mc == MonitorConfig::kHtNinja || mc == MonitorConfig::kAllThree) {
    ht.add_auditor(std::make_unique<auditors::HtNinja>());
  }
  if (mc == MonitorConfig::kAllThree) {
    ht.add_auditor(
        std::make_unique<auditors::Goshd>(vm.machine.num_vcpus()));
  }

  vm.kernel.boot();

  SimTime done_at = -1;
  auto main_wl = workloads::make_unixbench(spec, seed);
  main_wl->set_on_done([&done_at, &vm](SimTime t) {
    done_at = t;
    vm.machine.request_stop();
  });
  const SimTime t0 = vm.machine.now();
  if (spec.kind == workloads::UnixBenchSpec::Kind::kPipePingPong) {
    vm.kernel.spawn("pingpong-b", 1000, 1000, 1,
                    workloads::make_pingpong_partner(spec.iterations), 0,
                    /*cpu=*/0);
  }
  vm.kernel.spawn("bench", 1000, 1000, 1, std::move(main_wl), 0,
                  /*cpu=*/0);
  vm.machine.run_for(300'000'000'000ll);  // generous cap
  vm.machine.clear_stop();
  if (done_at < 0) return -1.0;
  return static_cast<double>(done_at - t0) / 1e9;
}

}  // namespace

int main() {
  const int runs = env_int("HYPERTAP_RUNS", 3);
  const auto suite = workloads::unixbench_suite();

  std::cout << "FIG 7: monitor overhead on the UnixBench-like suite ("
            << runs << " runs per cell; % vs baseline)\n\n";
  TablePrinter tp({"Benchmark", "Category", "base (s)", "HRKD", "HT-Ninja",
                   "all three"});

  htbench::BenchReport report("fig7_overhead");
  report.param("runs", runs);
  for (const auto& spec : suite) {
    Samples per_cfg[4];
    for (int cfg = 0; cfg < 4; ++cfg) {
      for (int r = 0; r < runs; ++r) {
        const double secs = run_once(
            spec, static_cast<MonitorConfig>(cfg),
            0xF1640000ull + static_cast<u64>(r) * 131ull);
        if (secs > 0) per_cfg[cfg].add(secs);
      }
    }
    const double base = per_cfg[0].mean();
    auto overhead = [&](int cfg) {
      if (base <= 0 || per_cfg[cfg].empty()) return std::string("-");
      const double pct = (per_cfg[cfg].mean() - base) / base * 100.0;
      return format_double(pct, 1) + "%";
    };
    tp.add_row({spec.label, to_string(spec.category),
                format_double(base, 3), overhead(1), overhead(2),
                overhead(3)});
    std::string slug = spec.label;
    for (char& c : slug) {
      if (c == ' ' || c == '/') c = '_';
    }
    report.metric(slug + ".base_s", base);
    const char* cfg_names[] = {"", "hrkd", "ht_ninja", "all_three"};
    for (int cfg = 1; cfg < 4; ++cfg) {
      if (base > 0 && !per_cfg[cfg].empty()) {
        report.metric(
            slug + "." + cfg_names[cfg] + "_overhead_pct",
            (per_cfg[cfg].mean() - base) / base * 100.0);
      }
    }
    std::cerr << "  " << spec.label << " done\n";
  }
  std::cout << tp.str();
  report.write();
  std::cout << "\npaper shape: CPU <2%, disk I/O <5%, context-switch "
               "micro ~10%, syscall micro ~19%; 'all three' tracks the "
               "most expensive single monitor (shared logging), not the "
               "sum.\n";
  return 0;
}
