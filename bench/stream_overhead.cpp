// Streaming-telemetry overhead harness (the stream analogue of
// telemetry_overhead).
//
// Runs the same monitored guest (three auditors, syscall-heavy workload)
// twice per rep: once with the telemetry bundle wired but no streaming,
// once additionally delta-capturing the registry into a `.tlmstream`
// every 250 ms of simulated time. The capture happens BETWEEN run_for
// chunks — never inside the sim — so both arms drive an identical
// schedule and the wall-clock delta is pure streaming cost.
//
// Gates (exit status):
//   * sim-time invariance: identical exit counts with and without the
//     streamer (the stream charges zero simulated cycles);
//   * stream determinism: two streaming runs with the same seed emit
//     byte-identical `.tlmstream` bytes (digest equality);
//   * compiled out (-DHYPERTAP_TELEMETRY=OFF): the HT_* macros vanish, the
//     registry stays empty, and best-of-reps streaming overhead must drop
//     under 1%.
//
// Environment: HYPERTAP_STREAM_REPS (default 3).
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "auditors/goshd.hpp"
#include "auditors/hrkd.hpp"
#include "auditors/ped.hpp"
#include "bench_report.hpp"
#include "core/hypertap.hpp"
#include "journal/journal.hpp"
#include "telemetry/stream.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::format_double;

namespace {

constexpr SimTime kGuestTime = 3'000'000'000;    // 3 s of simulated guest
constexpr SimTime kCapturePeriod = 250'000'000;  // one frame per 250 ms

int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

class Busy final : public os::Workload {
 public:
  os::Action next(os::TaskCtx&) override {
    switch (i_++ % 4) {
      case 0: return os::ActCompute{400'000};
      case 1: return os::ActSyscall{os::SYS_WRITE, 3, 2048};
      case 2: return os::ActSyscall{os::SYS_GETPID};
      default: return os::ActSyscall{os::SYS_YIELD};
    }
  }
  std::string name() const override { return "busy"; }

 private:
  int i_ = 0;
};

struct RunOutcome {
  double wall_s = 0.0;
  u64 exits = 0;
  u64 frames = 0;
  u64 stream_bytes = 0;
  u32 digest = 0;
};

/// One monitored run, telemetry always wired; `stream` toggles the
/// periodic delta capture. Both arms run the identical chunked loop so
/// the schedule (and therefore every exit) matches exactly.
RunOutcome run_once(bool stream, u64 seed) {
  hv::MachineConfig mc;
  mc.seed = seed;
  os::Vm vm(mc, os::KernelConfig{});
  HyperTap ht(vm);
  ht.add_auditor(std::make_unique<auditors::Hrkd>(
      auditors::Hrkd::Config{},
      [&k = vm.kernel]() { return k.in_guest_view_pids(); }));
  ht.add_auditor(std::make_unique<auditors::HtNinja>());
  ht.add_auditor(std::make_unique<auditors::Goshd>(vm.machine.num_vcpus()));
  telemetry::Telemetry tel;
  ht.set_telemetry(&tel, 0);

  journal::MemoryJournalStore store;
  std::unique_ptr<telemetry::SnapshotStreamer> streamer;
  if (stream) streamer = std::make_unique<telemetry::SnapshotStreamer>(store);

  vm.kernel.boot();
  vm.kernel.spawn("busy", 1000, 1000, 1, std::make_unique<Busy>());

  const auto t0 = std::chrono::steady_clock::now();
  for (SimTime t = kCapturePeriod; t <= kGuestTime; t += kCapturePeriod) {
    vm.machine.run_for(kCapturePeriod);
    if (streamer) streamer->capture(vm.machine.now(), tel.registry);
  }
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const auto& eng = vm.machine.engine();
  for (u8 r = 0; r < static_cast<u8>(hav::ExitReason::kCount); ++r) {
    out.exits += eng.total_exit_count(static_cast<hav::ExitReason>(r));
  }
  if (streamer) {
    out.frames = streamer->frames();
    out.stream_bytes = streamer->bytes_written();
    out.digest = journal::store_digest(store);
  }
  return out;
}

}  // namespace

int main() {
  const int reps = env_int("HYPERTAP_STREAM_REPS", 3);
#ifdef HYPERTAP_TELEMETRY_DISABLED
  const bool compiled_out = true;
#else
  const bool compiled_out = false;
#endif

  std::cout << "STREAM OVERHEAD: 3 auditors, syscall-heavy guest, "
            << static_cast<double>(kGuestTime) / 1e9 << " s guest time, "
            << "1 frame / " << static_cast<double>(kCapturePeriod) / 1e6
            << " ms, " << reps << " reps (telemetry "
            << (compiled_out ? "COMPILED OUT" : "compiled in") << ")\n\n";

  // Warm-up (page in code, allocator): one unmeasured run of each shape.
  run_once(false, 7);
  run_once(true, 7);

  Samples base_s, stream_s;
  u64 base_exits = 0, stream_exits = 0;
  u64 frames = 0, stream_bytes = 0;
  for (int r = 0; r < reps; ++r) {
    const u64 seed = 42 + static_cast<u64>(r);
    const RunOutcome b = run_once(false, seed);
    base_s.add(b.wall_s);
    base_exits += b.exits;
    const RunOutcome s = run_once(true, seed);
    stream_s.add(s.wall_s);
    stream_exits += s.exits;
    frames = s.frames;
    stream_bytes = s.stream_bytes;
  }

  const double overhead_pct =
      (stream_s.mean() - base_s.mean()) / base_s.mean() * 100.0;
  // Best-of-reps for the CI gate: min is far less sensitive to scheduler
  // noise than the mean on a shared runner.
  const double overhead_min_pct =
      (stream_s.min() - base_s.min()) / base_s.min() * 100.0;
  std::cout << "no stream: " << format_double(base_s.mean() * 1e3, 1)
            << " ms/run (" << base_exits / reps << " exits)\n";
  std::cout << "streaming: " << format_double(stream_s.mean() * 1e3, 1)
            << " ms/run (" << stream_exits / reps << " exits, " << frames
            << " frames, " << stream_bytes << " bytes)\n";
  std::cout << "overhead:  " << format_double(overhead_pct, 2) << "% (mean), "
            << format_double(overhead_min_pct, 2) << "% (best-of-reps)\n\n";

  // Sim-time invariance: capture runs between chunks, charges nothing.
  const bool sim_invariant = base_exits == stream_exits;
  std::cout << "sim-time invariant (identical exit counts): "
            << (sim_invariant ? "yes" : "NO") << "\n";

  // Stream determinism: same seed, two runs, byte-identical streams.
  const RunOutcome d1 = run_once(true, 1234);
  const RunOutcome d2 = run_once(true, 1234);
  const bool deterministic =
      d1.digest == d2.digest && d1.frames == d2.frames && d1.frames > 0;
  std::cout << "stream deterministic (digest equality):     "
            << (deterministic ? "yes" : "NO") << "\n";

  htbench::BenchReport report("stream_overhead");
  report.horizon(kGuestTime);
  report.param("reps", reps)
      .param("guest_seconds", static_cast<double>(kGuestTime) / 1e9)
      .param("capture_period_ms",
             static_cast<double>(kCapturePeriod) / 1e6)
      .param("compiled_out", compiled_out ? 1 : 0)
      .metric("base_mean_s", base_s.mean())
      .metric("stream_mean_s", stream_s.mean())
      .metric("overhead_pct", overhead_pct)
      .metric("overhead_min_pct", overhead_min_pct)
      .metric("frames", static_cast<double>(frames))
      .metric("stream_bytes", static_cast<double>(stream_bytes))
      .metric("bytes_per_frame",
              frames > 0 ? static_cast<double>(stream_bytes) /
                               static_cast<double>(frames)
                         : 0.0)
      .metric("stream_digest", static_cast<double>(d1.digest))
      .metric("sim_time_invariant", sim_invariant ? 1.0 : 0.0)
      .metric("stream_deterministic", deterministic ? 1.0 : 0.0);
  report.write();

  if (!sim_invariant || !deterministic) return 1;
  if (compiled_out && overhead_min_pct > 1.0) {
    std::cerr << "FAIL: compiled-out streaming overhead " << overhead_min_pct
              << "% exceeds 1%\n";
    return 1;
  }
  return 0;
}
