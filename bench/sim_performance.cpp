// Microbenchmark: the simulator itself — how many guest-seconds per real
// second the substrate delivers under different monitoring loads, plus
// boot latency and campaign-run cost. Useful for sizing the full-scale
// Fig. 4 campaign.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

#include "auditors/goshd.hpp"
#include "auditors/hrkd.hpp"
#include "auditors/ped.hpp"
#include "core/hypertap.hpp"
#include "fi/campaign.hpp"
#include "fi/locations.hpp"
#include "workloads/workload.hpp"

using namespace hvsim;
using namespace hypertap;

namespace {

class BusyApp final : public os::Workload {
 public:
  os::Action next(os::TaskCtx&) override {
    switch (i_++ % 3) {
      case 0: return os::ActCompute{500'000};
      case 1: return os::ActSyscall{os::SYS_WRITE, 3, 2048};
      default: return os::ActSyscall{os::SYS_GETPID};
    }
  }
  int i_ = 0;
};

void BM_BootLatency(benchmark::State& state) {
  for (auto _ : state) {
    os::Vm vm;
    vm.kernel.boot();
    benchmark::DoNotOptimize(vm.kernel.layout().init_task);
  }
}
BENCHMARK(BM_BootLatency)->Unit(benchmark::kMillisecond);

void BM_GuestSecond(benchmark::State& state) {
  // arg: 0 = unmonitored, 1 = all three sample monitors.
  const bool monitored = state.range(0) != 0;
  os::Vm vm;
  HyperTap ht(vm);
  if (monitored) {
    ht.add_auditor(std::make_unique<auditors::Goshd>(2));
    ht.add_auditor(std::make_unique<auditors::HtNinja>());
    ht.add_auditor(std::make_unique<auditors::Hrkd>(
        auditors::Hrkd::Config{},
        [&k = vm.kernel]() { return k.in_guest_view_pids(); }));
  }
  vm.kernel.boot();
  vm.kernel.spawn("busy", 1, 1, 1, std::make_unique<BusyApp>(), 0, 0);
  for (auto _ : state) {
    vm.machine.run_for(1'000'000'000);  // one guest second
  }
  state.SetLabel(monitored ? "all-three-monitors" : "unmonitored");
}
BENCHMARK(BM_GuestSecond)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CampaignRun(benchmark::State& state) {
  const auto locations = fi::generate_locations();
  u64 seed = 0;
  for (auto _ : state) {
    fi::RunConfig cfg;
    cfg.workload = fi::WorkloadKind::kMakeJ2;
    cfg.location = static_cast<u16>(seed % 100);
    cfg.fault_class = os::FaultClass::kMissingRelease;
    cfg.seed = ++seed;
    const auto res = fi::run_one(cfg, locations);
    benchmark::DoNotOptimize(res.outcome);
  }
}
BENCHMARK(BM_CampaignRun)->Unit(benchmark::kMillisecond);

void BM_ExitEngineDispatch(benchmark::State& state) {
  os::Vm vm;
  HyperTap ht(vm);
  ht.add_auditor(std::make_unique<auditors::HtNinja>());
  vm.kernel.boot();
  arch::Vcpu& v = vm.machine.vcpu(0);
  vm.machine.engine().for_all_controls(
      [](hav::VmcsControls& c) { c.cr3_load_exiting = true; });
  const u32 cr3 = v.regs().cr3;
  for (auto _ : state) {
    vm.machine.engine().write_cr3(v, cr3);  // exit + decode + fan-out
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ExitEngineDispatch);

void BM_TrustedDerivation(benchmark::State& state) {
  // The auditing hot path: TR -> TSS.RSP0 -> thread_info -> task_struct.
  os::Vm vm;
  HyperTap ht(vm);
  vm.kernel.boot();
  vm.kernel.spawn("busy", 1, 1, 1, std::make_unique<BusyApp>(), 0, 0);
  vm.machine.run_for(100'000'000);
  for (auto _ : state) {
    const GuestTaskView v = ht.os_state().current_task(0);
    benchmark::DoNotOptimize(v.pid);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_TrustedDerivation);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_sim_performance.json so every run leaves a machine-readable
// record (an explicit --benchmark_out on the command line still wins).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
      has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_sim_performance.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out)
    std::cerr << "bench_report: wrote BENCH_sim_performance.json\n";
  return 0;
}
