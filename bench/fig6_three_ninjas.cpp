// Fig. 6 / §VIII-C2 — The three Ninjas vs transient + spamming + rootkit
// attacks.
//
// The attack (repeated N times per configuration, randomly phased):
// privilege escalation (CVE-2013-1763 style) + immediate rootkit hide +
// privileged act + exit; end-to-end ~4 ms, optionally after spawning idle
// processes to stretch the scanner (spamming).
//
//  * O-Ninja (in-guest, 0 s interval): detection collapses as idle
//    processes are added (paper: ~10% @ 31 procs, 2-3% @ +100 idle,
//    ~0% @ +200).
//  * H-Ninja (hypervisor VMI, blocking): detection falls with the scan
//    interval (paper: 100% @ 4 ms, ~60% @ 8 ms, small beyond 20 ms).
//  * HT-Ninja (HyperTap, active): detects every attack.
//
// Environment: HYPERTAP_TRIALS (default 150; paper used 300).
#include <cstdlib>
#include <iostream>
#include <set>

#include "attacks/scenario.hpp"
#include "bench_report.hpp"
#include "auditors/ped.hpp"
#include "core/hypertap.hpp"
#include "util/stats.hpp"
#include "vmi/h_ninja.hpp"
#include "vmi/o_ninja.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::TablePrinter;
using hvsim::util::percent;

namespace {

int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

struct TrialHarness {
  os::Vm vm;
  HyperTap ht;
  u32 shell_pid = 0;

  explicit TrialHarness() : ht(vm) {}

  void boot_with_population(u32 n_spam) {
    vm.kernel.boot();
    shell_pid =
        vm.kernel.spawn("bash", 1000, 1000, 1, attacks::make_idle_spam());
    // The paper's baseline system has ~31 processes running.
    for (int i = 0; i < 24; ++i) {
      vm.kernel.spawn("daemon" + std::to_string(i), 1, 1, 1,
                      attacks::make_idle_spam());
    }
    for (u32 i = 0; i < n_spam; ++i) {
      vm.kernel.spawn("idle" + std::to_string(i), 1000, 1000, shell_pid,
                      attacks::make_idle_spam());
    }
    vm.machine.run_for(1'000'000'000);
  }

  /// One attack trial; returns the attacker pid.
  u32 run_trial() {
    attacks::AttackPlan plan;
    plan.rootkit = attacks::rootkit_by_name("Ivyl's Rootkit");
    // The attacker's process (its shell session) exists well before the
    // exploit fires — scanners have seen it as an ordinary user process.
    // The random lead time also randomizes the attack phase relative to
    // scanner cycles.
    plan.escalate_after =
        250'000'000 +
        static_cast<SimTime>(vm.machine.rng().below(300'000'000));
    plan.attacker_cpu = 1;  // scanners run on core 0 (dual-core testbed)
    attacks::AttackDriver driver(vm.kernel, plan);
    driver.set_existing_shell(shell_pid);
    driver.launch();
    vm.machine.run_for(plan.escalate_after + 80'000'000);
    return driver.attacker_pid();
  }
};

}  // namespace

int main() {
  const int trials = env_int("HYPERTAP_TRIALS", 150);
  std::cout << "FIG 6 / Sec. VIII-C2: the three Ninjas, " << trials
            << " attack trials per configuration\n\n";

  htbench::BenchReport report("fig6_three_ninjas");
  report.param("trials", trials);

  // ---- O-Ninja vs spamming ---------------------------------------------
  TablePrinter to({"Detector", "Configuration", "Detected", "Rate"});
  for (const u32 n_spam : {0u, 100u, 200u, 500u}) {
    TrialHarness h;
    std::set<u32> detected;
    vmi::ONinjaWorkload::Config ocfg;
    ocfg.interval_us = 0;  // scan back-to-back, its strongest setting
    h.vm.kernel.boot();
    h.shell_pid = h.vm.kernel.spawn("bash", 1000, 1000, 1,
                                    attacks::make_idle_spam());
    h.vm.kernel.spawn(
        "ninja", 0, 0, 1,
        std::make_unique<vmi::ONinjaWorkload>(
            ocfg, [&detected](u32 pid) { detected.insert(pid); }),
        0, /*cpu=*/0);
    for (int i = 0; i < 23; ++i)
      h.vm.kernel.spawn("daemon" + std::to_string(i), 1, 1, 1,
                        attacks::make_idle_spam());
    for (u32 i = 0; i < n_spam; ++i)
      h.vm.kernel.spawn("idle" + std::to_string(i), 1000, 1000,
                        h.shell_pid, attacks::make_idle_spam());
    h.vm.machine.run_for(2'000'000'000);

    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      const u32 pid = h.run_trial();
      if (detected.count(pid)) ++hits;
    }
    to.add_row({"O-Ninja (0 s interval)",
                n_spam == 0 ? "~31 processes"
                            : "+" + std::to_string(n_spam) + " idle procs",
                std::to_string(hits) + "/" + std::to_string(trials),
                percent(static_cast<double>(hits) / trials)});
    report.metric("o_ninja.spam_" + std::to_string(n_spam) + ".rate",
                  static_cast<double>(hits) / trials);
    std::cerr << "  O-Ninja spam=" << n_spam << " done\n";
  }
  std::cout << to.str() << "\n";

  // ---- H-Ninja vs interval ----------------------------------------------
  TablePrinter th({"Detector", "Interval", "Detected", "Rate"});
  for (const SimTime interval_ms : {4ll, 8ll, 20ll, 40ll}) {
    TrialHarness h;
    h.boot_with_population(0);
    std::set<u32> detected;
    vmi::HNinja::Config hcfg;
    hcfg.interval = interval_ms * 1'000'000;
    vmi::HNinja hninja(h.vm.machine.hypervisor(), h.vm.kernel.layout(),
                       hcfg,
                       [&detected](u32 pid) { detected.insert(pid); });
    hninja.start(h.vm.machine);

    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      const u32 pid = h.run_trial();
      if (detected.count(pid)) ++hits;
    }
    hninja.stop();
    th.add_row({"H-Ninja (VMI, blocking)",
                std::to_string(interval_ms) + " ms",
                std::to_string(hits) + "/" + std::to_string(trials),
                percent(static_cast<double>(hits) / trials)});
    report.metric(
        "h_ninja.interval_" + std::to_string(interval_ms) + "ms.rate",
        static_cast<double>(hits) / trials);
    std::cerr << "  H-Ninja interval=" << interval_ms << "ms done\n";
  }
  std::cout << th.str() << "\n";

  // ---- HT-Ninja -----------------------------------------------------------
  {
    TrialHarness h;
    auto ninja_owned = std::make_unique<auditors::HtNinja>();
    auto* ht_ninja = ninja_owned.get();
    h.ht.add_auditor(std::move(ninja_owned));
    h.boot_with_population(200);  // spammed AND rootkit-hidden

    int hits = 0;
    for (int t = 0; t < trials; ++t) {
      const u32 pid = h.run_trial();
      if (ht_ninja->flagged_pids().count(pid)) ++hits;
    }
    TablePrinter tt({"Detector", "Configuration", "Detected", "Rate"});
    tt.add_row({"HT-Ninja (active)", "+200 idle procs, rootkit, ~4 ms",
                std::to_string(hits) + "/" + std::to_string(trials),
                percent(static_cast<double>(hits) / trials)});
    std::cout << tt.str();
    report.metric("ht_ninja.rate", static_cast<double>(hits) / trials);
  }
  report.write();

  std::cout << "\npaper shape: O-Ninja ~10% -> 2-3% -> ~0% as spam grows; "
               "H-Ninja 100% @4 ms collapsing with interval; HT-Ninja "
               "100% in every scenario.\n";
  return 0;
}
