// Telemetry overhead harness.
//
// Runs the same monitored guest (three auditors, syscall-heavy workload)
// with the telemetry layer unwired and wired, and reports the wall-clock
// cost of the instrumentation. Built with -DHYPERTAP_TELEMETRY=OFF the
// HT_* macros compile to nothing and the wired/unwired delta must vanish
// (<1%); that build is the "compiled out" row CI checks.
//
// Also asserts the two properties the telemetry layer promises:
//   * sim-time invariance: wiring telemetry changes no guest-visible
//     schedule (identical exit counts for identical seeds), and
//   * snapshot determinism: two wired runs with the same seed produce
//     byte-identical metric snapshots.
// A sample Chrome/Perfetto trace from one wired run is written next to
// the JSON report.
//
// Environment: HYPERTAP_TELEMETRY_REPS (default 3).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "auditors/goshd.hpp"
#include "auditors/hrkd.hpp"
#include "auditors/ped.hpp"
#include "bench_report.hpp"
#include "core/hypertap.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::format_double;

namespace {

constexpr SimTime kGuestTime = 3'000'000'000;  // 3 s of simulated guest

int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

class Busy final : public os::Workload {
 public:
  os::Action next(os::TaskCtx&) override {
    switch (i_++ % 4) {
      case 0: return os::ActCompute{400'000};
      case 1: return os::ActSyscall{os::SYS_WRITE, 3, 2048};
      case 2: return os::ActSyscall{os::SYS_GETPID};
      default: return os::ActSyscall{os::SYS_YIELD};
    }
  }
  std::string name() const override { return "busy"; }

 private:
  int i_ = 0;
};

struct RunOutcome {
  double wall_s = 0.0;
  u64 exits = 0;
};

/// One monitored run; `tel` == nullptr leaves the pipeline unwired.
RunOutcome run_once(telemetry::Telemetry* tel, u64 seed) {
  hv::MachineConfig mc;
  mc.seed = seed;
  os::Vm vm(mc, os::KernelConfig{});
  HyperTap ht(vm);
  ht.add_auditor(std::make_unique<auditors::Hrkd>(
      auditors::Hrkd::Config{},
      [&k = vm.kernel]() { return k.in_guest_view_pids(); }));
  ht.add_auditor(std::make_unique<auditors::HtNinja>());
  ht.add_auditor(std::make_unique<auditors::Goshd>(vm.machine.num_vcpus()));
  if (tel != nullptr) ht.set_telemetry(tel, 0);

  vm.kernel.boot();
  vm.kernel.spawn("busy", 1000, 1000, 1, std::make_unique<Busy>());

  const auto t0 = std::chrono::steady_clock::now();
  vm.machine.run_for(kGuestTime);
  const auto t1 = std::chrono::steady_clock::now();

  RunOutcome out;
  out.wall_s = std::chrono::duration<double>(t1 - t0).count();
  const auto& eng = vm.machine.engine();
  for (u8 r = 0; r < static_cast<u8>(hav::ExitReason::kCount); ++r) {
    out.exits += eng.total_exit_count(static_cast<hav::ExitReason>(r));
  }
  return out;
}

}  // namespace

int main() {
  const int reps = env_int("HYPERTAP_TELEMETRY_REPS", 3);
#ifdef HYPERTAP_TELEMETRY_DISABLED
  const bool compiled_out = true;
#else
  const bool compiled_out = false;
#endif

  std::cout << "TELEMETRY OVERHEAD: 3 auditors, syscall-heavy guest, "
            << static_cast<double>(kGuestTime) / 1e9
            << " s guest time, " << reps << " reps (telemetry "
            << (compiled_out ? "COMPILED OUT" : "compiled in") << ")\n\n";

  // Warm-up (page in code, allocator): one unmeasured run of each shape.
  telemetry::Telemetry warm;
  run_once(nullptr, 7);
  run_once(&warm, 7);

  Samples unwired_s, wired_s;
  u64 unwired_exits = 0, wired_exits = 0;
  for (int r = 0; r < reps; ++r) {
    const u64 seed = 42 + static_cast<u64>(r);
    const RunOutcome u = run_once(nullptr, seed);
    unwired_s.add(u.wall_s);
    unwired_exits += u.exits;
    // Fresh bundle per rep: spans/series from earlier reps must not slow
    // (or alias into) later ones.
    telemetry::Telemetry tel;
    const RunOutcome w = run_once(&tel, seed);
    wired_s.add(w.wall_s);
    wired_exits += w.exits;
  }

  const double overhead_pct =
      (wired_s.mean() - unwired_s.mean()) / unwired_s.mean() * 100.0;
  // The CI gate compares best-of-reps: the min is far less sensitive to
  // scheduler noise than the mean on a shared runner.
  const double overhead_min_pct =
      (wired_s.min() - unwired_s.min()) / unwired_s.min() * 100.0;
  std::cout << "unwired:  " << format_double(unwired_s.mean() * 1e3, 1)
            << " ms/run (" << unwired_exits / reps << " exits)\n";
  std::cout << "wired:    " << format_double(wired_s.mean() * 1e3, 1)
            << " ms/run (" << wired_exits / reps << " exits)\n";
  std::cout << "overhead: " << format_double(overhead_pct, 2) << "% (mean), "
            << format_double(overhead_min_pct, 2) << "% (best-of-reps)\n\n";

  // Sim-time invariance: telemetry charges no simulated cycles, so the
  // guest must take exactly the same number of exits either way.
  const bool sim_invariant = unwired_exits == wired_exits;
  std::cout << "sim-time invariant (identical exit counts): "
            << (sim_invariant ? "yes" : "NO") << "\n";

  // Snapshot determinism: same seed, two wired runs, byte-identical
  // metric snapshots.
  telemetry::Telemetry a, b;
  run_once(&a, 1234);
  run_once(&b, 1234);
  const bool deterministic =
      a.registry.prometheus_text() == b.registry.prometheus_text();
  std::cout << "snapshot deterministic (byte-identical):    "
            << (deterministic ? "yes" : "NO") << "\n";

  // Sample artifacts from the last wired run: a Perfetto-loadable trace
  // and a metrics snapshot.
  {
    std::ofstream tf("BENCH_telemetry_overhead.trace.json");
    b.tracer.write_chrome_json(tf);
    std::ofstream mf("BENCH_telemetry_overhead.metrics.prom");
    mf << b.registry.prometheus_text();
    std::cerr << "bench_report: wrote BENCH_telemetry_overhead.trace.json"
              << " (" << b.tracer.spans().size() << " spans), "
              << "BENCH_telemetry_overhead.metrics.prom\n";
  }

  htbench::BenchReport report("telemetry_overhead");
  report.param("reps", reps)
      .param("guest_seconds", static_cast<double>(kGuestTime) / 1e9)
      .param("compiled_out", compiled_out ? 1 : 0)
      .metric("unwired_mean_s", unwired_s.mean())
      .metric("wired_mean_s", wired_s.mean())
      .metric("overhead_pct", overhead_pct)
      .metric("overhead_min_pct", overhead_min_pct)
      .metric("exits_per_run",
              static_cast<double>(wired_exits) / reps)
      .metric("sim_time_invariant", sim_invariant ? 1.0 : 0.0)
      .metric("snapshot_deterministic", deterministic ? 1.0 : 0.0)
      .metric("trace_spans", static_cast<double>(b.tracer.spans().size()));
  report.write();

  if (!sim_invariant || !deterministic) return 1;
  if (compiled_out && overhead_min_pct > 1.0) {
    std::cerr << "FAIL: compiled-out overhead " << overhead_min_pct
              << "% exceeds 1%\n";
    return 1;
  }
  return 0;
}
