// Replay-determinism gate (CI): record one fault-injection run into a
// file-backed journal, replay it twice through freshly constructed
// pipelines, and require the alarm sequences to match the recording byte
// for byte. Then corrupt a copy of the journal and require the oracle to
// notice. Exit status is the gate: nonzero on any divergence the oracle
// should not (or should) have reported.
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "auditors/goshd.hpp"
#include "bench_report.hpp"
#include "core/hypertap.hpp"
#include "fi/campaign.hpp"
#include "fi/locations.hpp"
#include "journal/replay.hpp"

using namespace hvsim;
using namespace hypertap;

namespace {

/// Replay a recorded journal through a brand-new pipeline: fresh VM (for
/// the audit context's root of trust), fresh multiplexer, fresh GOSHD with
/// the recording's configuration.
journal::ReplayResult replay_fresh(const journal::JournalStore& store,
                                   SimTime detect_threshold) {
  hv::MachineConfig mc;
  mc.num_vcpus = 2;
  mc.phys_mem_bytes = 16ull << 20;
  os::KernelConfig kc;
  os::Vm vm(mc, kc);
  vm.kernel.boot();

  AlarmSink alarms;
  OsStateDerivation deriv(vm.machine.hypervisor(), vm.kernel.layout());
  AuditContext ctx(vm.machine.hypervisor(), deriv, alarms);
  EventMultiplexer em{EventMultiplexer::Config{}};
  auditors::Goshd::Config gcfg;
  gcfg.threshold = detect_threshold;
  auditors::Goshd goshd(mc.num_vcpus, gcfg);
  em.register_auditor(&goshd, ctx);

  journal::Replayer replayer(store);
  return replayer.replay(em, ctx, vm.machine.hypervisor().vcpu(0));
}

}  // namespace

int main() {
  const std::string dir = "replay-determinism-journal";
  std::filesystem::remove_all(dir);

  // ---- Record: one hang-manifesting injection run ----------------------
  journal::FileJournalStore store(dir);
  fi::RunConfig cfg;
  cfg.workload = fi::WorkloadKind::kHanoi;
  cfg.location = 3;
  cfg.fault_class = os::FaultClass::kMissingRelease;
  cfg.seed = 11;
  cfg.journal_store = &store;
  const auto locations = fi::generate_locations(2014);
  const fi::RunResult rec = fi::run_one(cfg, locations);
  store.flush();

  std::cout << "recorded: outcome=" << to_string(rec.outcome)
            << " journal_records=" << rec.journal_records << "\n";

  int failures = 0;
  auto check = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS " : "FAIL ") << what << "\n";
    if (!ok) ++failures;
  };

  // ---- Replay twice: both must match the recording, and each other -----
  const auto r1 = replay_fresh(store, cfg.detect_threshold);
  const auto r2 = replay_fresh(store, cfg.detect_threshold);

  check(rec.journal_records > 0, "journal is non-empty");
  check(!r1.recorded.empty(), "recording contains alarms to compare");
  check(r1.matches_recording,
        "replay #1 reproduces the recorded alarm sequence byte-for-byte" +
            (r1.matches_recording
                 ? std::string()
                 : " (diverged at alarm " + std::to_string(r1.first_divergence) +
                       ", record " + std::to_string(r1.divergence_record) +
                       ")"));
  check(r2.matches_recording,
        "replay #2 reproduces the recorded alarm sequence byte-for-byte");
  bool identical = r1.alarms.size() == r2.alarms.size();
  for (std::size_t i = 0; identical && i < r1.alarms.size(); ++i) {
    identical =
        journal::alarm_bytes(r1.alarms[i]) == journal::alarm_bytes(r2.alarms[i]);
  }
  check(identical, "replay #1 and replay #2 are byte-identical");

  // ---- Oracle sensitivity: a corrupted journal must be reported --------
  journal::MemoryJournalStore tampered;
  for (const auto& name : store.segments()) {
    const auto bytes = store.read(name);
    tampered.append(name, bytes.data(), bytes.size());
  }
  const auto segs = tampered.segments();
  bool tamper_detected = false;
  if (!segs.empty()) {
    std::vector<u8>* raw = tampered.raw(segs.front());
    // Flip a byte well into the first segment (inside some record's
    // payload, past the boot preamble).
    if (raw != nullptr && raw->size() > 64) {
      (*raw)[raw->size() / 2] ^= 0x40;
      const auto r3 = replay_fresh(tampered, cfg.detect_threshold);
      // Either the record fails its CRC (quarantined) or the replayed
      // verdicts drift from the recorded alarms — both are detections.
      tamper_detected = r3.quarantined > 0 || !r3.matches_recording;
    }
  }
  check(tamper_detected, "byte-flipped journal is detected (CRC or oracle)");

  htbench::BenchReport report("replay_determinism");
  report.param("seed", static_cast<long long>(cfg.seed))
      .metric("journal_records", static_cast<double>(rec.journal_records))
      .metric("recorded_alarms", static_cast<double>(r1.recorded.size()))
      .metric("replayed_alarms", static_cast<double>(r1.alarms.size()))
      .metric("deterministic", failures == 0 ? 1.0 : 0.0);
  report.write();

  std::filesystem::remove_all(dir);
  if (failures != 0) {
    std::cout << failures << " check(s) failed\n";
    return 1;
  }
  std::cout << "replay determinism gate passed\n";
  return 0;
}
