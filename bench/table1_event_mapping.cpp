// Table I — Summary of guest internal events and related VM Exit types.
//
// Exercises every interception category of §VI on a live guest and
// reports, per guest-event class, the VM Exit type that captured it and
// the number of events observed — the executable form of Table I.
#include <iostream>

#include "auditors/counters.hpp"
#include "bench_report.hpp"
#include "core/hypertap.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::TablePrinter;

namespace {

/// Touches every event source: syscalls, file and net I/O, and user
/// memory reads/writes/fetches on a monitored page.
class Exerciser final : public os::Workload {
 public:
  os::Action next(os::TaskCtx&) override {
    switch (step_++ % 8) {
      case 0: return os::ActCompute{400'000};
      case 1: return os::ActSyscall{os::SYS_GETPID};
      case 2: return os::ActSyscall{os::SYS_WRITE, 3, 4096};
      case 3: return os::ActSyscall{os::SYS_NET_SEND, 0x11};
      case 4: return os::ActUserTouch{/*exec=*/false, 64};
      case 5: return os::ActUserTouch{/*exec=*/true, 128};
      case 6: return os::ActSyscall{os::SYS_READ, 3, 1024};
      default: return os::ActSyscall{os::SYS_YIELD};
    }
  }
  std::string name() const override { return "exerciser"; }

 private:
  int step_ = 0;
};

}  // namespace

int main() {
  os::KernelConfig kc;
  kc.nic_mmio = true;  // NIC via MMIO doorbell: EPT-based I/O interception
  os::Vm vm(hv::MachineConfig{}, kc);

  HyperTap ht(vm);
  auto counters_owned = std::make_unique<auditors::CounterExporter>(
      vm.machine.num_vcpus());
  auto* counters = counters_owned.get();
  ht.add_auditor(std::move(counters_owned));

  vm.kernel.boot();
  const u32 pid = vm.kernel.spawn("exerciser", 1000, 1000, 1,
                                  std::make_unique<Exerciser>());

  // Fine-grained interception (§VI-D): protect the exerciser's user
  // stack (writes) and code (execution) pages.
  {
    auto& hv = vm.machine.hypervisor();
    const os::Task* t = vm.kernel.find_task(pid);
    const auto stack_gpa =
        hv.gva_to_gpa(t->pdba, os::USER_STACK_TOP - hvsim::PAGE_SIZE);
    const auto code_gpa = hv.gva_to_gpa(t->pdba, os::USER_CODE_BASE);
    hv.ept().write_protect(*stack_gpa, true);
    hv.ept().exec_protect(*code_gpa, true);
  }

  vm.machine.run_for(10'000'000'000);

  auto total = [&](EventKind k) {
    u64 n = 0;
    for (const auto& s : counters->samples())
      for (const auto& per_cpu : s.counts)
        n += per_cpu[static_cast<std::size_t>(k)];
    return n;
  };
  const auto& eng = vm.machine.engine();

  std::cout << "TABLE I: Guest internal events and related VM Exit types\n"
            << "(10 s of guest time; 2 vCPUs; all interception classes "
               "armed)\n\n";
  TablePrinter tp({"Monitoring category", "Guest event", "VM Exit",
                   "Architectural invariant", "Events observed"});
  tp.add_row({"Context switch interception", "Process context switch",
              "CR_ACCESS", "CR3 -> PDBA of running process",
              std::to_string(total(EventKind::kProcessSwitch))});
  tp.add_row({"Context switch interception", "Thread switch",
              "EPT_VIOLATION", "TR -> TSS; TSS.RSP0 unique per thread",
              std::to_string(total(EventKind::kThreadSwitch))});
  tp.add_row({"System call interception", "Fast system call (SYSENTER)",
              "WRMSR + EPT_VIOLATION",
              "entry point held in IA32_SYSENTER_EIP MSR",
              std::to_string(total(EventKind::kSyscall))});
  tp.add_row({"System call interception", "MSR setup (boot)", "WRMSR",
              "WRMSR is privileged and exits",
              std::to_string(total(EventKind::kMsrWrite))});
  tp.add_row({"I/O access interception", "Programmed I/O (disk cmds)",
              "IO_INSTRUCTION", "IN/OUT exit in guest mode",
              std::to_string(total(EventKind::kIo))});
  tp.add_row({"I/O access interception", "Memory-mapped I/O (NIC)",
              "EPT_VIOLATION", "device window is EPT-protected",
              std::to_string(total(EventKind::kMmio))});
  tp.add_row({"I/O access interception", "Hardware interrupt",
              "EXTERNAL_INT", "interrupt delivery exits",
              std::to_string(total(EventKind::kExternalInterrupt))});
  tp.add_row({"I/O access interception", "I/O APIC access (EOI)",
              "APIC_ACCESS", "APIC page access exits",
              std::to_string(total(EventKind::kApicAccess))});
  tp.add_row({"Low-level interception", "Memory access / instruction "
              "execution", "EPT_VIOLATION",
              "page R/W/X permissions in EPT",
              std::to_string(total(EventKind::kMemAccess))});
  std::cout << tp.str();

  std::cout << "\nRaw exit counts (engine):\n";
  TablePrinter raw({"Exit reason", "Count"});
  for (u8 r = 0; r < static_cast<u8>(hav::ExitReason::kCount); ++r) {
    const auto reason = static_cast<hav::ExitReason>(r);
    raw.add_row({to_string(reason),
                 std::to_string(eng.total_exit_count(reason))});
  }
  std::cout << raw.str();

  // The legacy gate (Fig. 3D): a guest built with INT-0x80 syscalls makes
  // the same workload produce EXCEPTION exits instead of EPT fetch traps.
  os::KernelConfig legacy;
  legacy.fast_syscalls = false;
  os::Vm vm2(hv::MachineConfig{}, legacy);
  HyperTap ht2(vm2);
  ht2.add_auditor(std::make_unique<auditors::CounterExporter>(
      vm2.machine.num_vcpus()));
  vm2.kernel.boot();
  vm2.kernel.spawn("exerciser", 1000, 1000, 1,
                   std::make_unique<Exerciser>());
  vm2.machine.run_for(2'000'000'000);
  const u64 legacy_exceptions =
      vm2.machine.engine().total_exit_count(hav::ExitReason::kException);
  std::cout << "\nLegacy-gate guest (INT 0x80, 2 s): EXCEPTION exits = "
            << legacy_exceptions
            << " (interrupt-based syscall interception, Fig. 3D)\n";

  htbench::BenchReport report("table1_event_mapping");
  report.param("guest_seconds", 10)
      .param("vcpus", static_cast<int>(vm.machine.num_vcpus()))
      .metric("process_switch", static_cast<double>(
                                    total(EventKind::kProcessSwitch)))
      .metric("thread_switch",
              static_cast<double>(total(EventKind::kThreadSwitch)))
      .metric("syscall", static_cast<double>(total(EventKind::kSyscall)))
      .metric("msr_write", static_cast<double>(total(EventKind::kMsrWrite)))
      .metric("io", static_cast<double>(total(EventKind::kIo)))
      .metric("mmio", static_cast<double>(total(EventKind::kMmio)))
      .metric("external_interrupt",
              static_cast<double>(total(EventKind::kExternalInterrupt)))
      .metric("apic_access",
              static_cast<double>(total(EventKind::kApicAccess)))
      .metric("mem_access",
              static_cast<double>(total(EventKind::kMemAccess)))
      .metric("legacy_exception_exits",
              static_cast<double>(legacy_exceptions));
  for (u8 r = 0; r < static_cast<u8>(hav::ExitReason::kCount); ++r) {
    const auto reason = static_cast<hav::ExitReason>(r);
    report.metric(std::string("exits.") + to_string(reason),
                  static_cast<double>(eng.total_exit_count(reason)));
  }
  report.write();
  return 0;
}
