// Fuzz-campaign bench + CI smoke gate.
//
// Arms the test-only planted decode bug, records a seed corpus from real
// fi::Campaign scenarios, and fuzzes under a wall-clock budget. Gates
// (exit status != 0 on any failure):
//   1. the campaign FINDS the planted bug within the budget;
//   2. every finding auto-shrinks to a verified reproducer of <= 10
//      records (no unshrunk findings escape to CI);
//   3. a fixed-exec differential arm at threads=1 vs --threads produces
//      byte-identical summaries, corpus digests and reproducers.
// Emits BENCH_fuzz_campaign.json (execs/sec, time-to-first-finding,
// shrink ratio) via bench_report.hpp.
//
// Flags: --seconds N (wall budget for the hunt phase, default 30)
//        --seed N    (master seed, default 2014)
//        --threads N (worker threads, default 4)
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "bench_report.hpp"
#include "exec/fuzz_campaign.hpp"
#include "fi/campaign.hpp"
#include "fi/locations.hpp"

using namespace hvsim;
using namespace hypertap;

namespace {

double now_s() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

std::vector<fuzz::CorpusEntry> record_seeds(u64 seed) {
  const auto locations = fi::generate_locations(2014);
  fi::SeedCorpusConfig scfg;
  scfg.seed = seed;
  scfg.scenarios = 3;
  scfg.max_records = 400;
  auto seeds = fi::export_seed_corpus(locations, scfg);
  std::vector<fuzz::CorpusEntry> entries;
  for (auto& sj : seeds) {
    entries.push_back(fuzz::make_entry(sj.name, *sj.store));
  }
  return entries;
}

exec::FuzzOptions base_options(u64 seed, int threads) {
  exec::FuzzOptions opts;
  opts.threads = threads;
  opts.master_seed = seed;
  opts.batch = 64;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 30;
  u64 seed = 2014;
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      const std::size_t n = std::strlen(flag);
      if (arg.compare(0, n, flag) != 0) return nullptr;
      if (arg.size() > n && arg[n] == '=') return arg.c_str() + n + 1;
      if (arg.size() == n && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    if (const char* v = value("--seconds")) {
      seconds = std::atof(v);
    } else if (const char* v = value("--seed")) {
      seed = static_cast<u64>(std::atoll(v));
    } else if (const char* v = value("--threads")) {
      threads = std::atoi(v);
    }
  }

  int failures = 0;
  auto check = [&failures](bool ok, const std::string& what) {
    std::cout << (ok ? "PASS " : "FAIL ") << what << "\n";
    if (!ok) ++failures;
  };

  journal::arm_planted_decode_bug(true);

  const double t_seed0 = now_s();
  const auto seeds = record_seeds(seed);
  std::cout << "seed corpus: " << seeds.size() << " scenarios ("
            << (now_s() - t_seed0) << " s)\n";
  check(!seeds.empty(), "seed corpus recorded from campaign scenarios");

  // ---- Phase 1: hunt the planted bug under the wall-clock budget -------
  exec::FuzzOptions opts = base_options(seed, threads);
  opts.max_execs = 1u << 20;  // bounded by the budget, not by count
  opts.repro_dir = ".";
  exec::StopSource stop;
  opts.stop = stop.token();
  const double t0 = now_s();
  double first_finding_s = -1;
  opts.on_round = [&](u64, u64 findings) {
    if (findings > 0 && first_finding_s < 0) first_finding_s = now_s() - t0;
    if (findings > 0 || now_s() - t0 > seconds) stop.request_stop();
  };
  exec::FuzzCampaignRunner runner(seeds, std::move(opts));
  const exec::FuzzReport report = runner.run();
  const double wall = now_s() - t0;

  std::cout << report.summary;
  std::cout << "wall=" << wall << " s execs=" << report.execs << "\n";

  const double execs_per_s =
      wall > 0 ? static_cast<double>(report.seeds + report.execs) / wall : 0;

  check(!report.findings.empty(),
        "planted decode bug found within the time budget");
  bool planted_found = false;
  double shrink_ratio = 0;
  for (const auto& f : report.findings) {
    if (f.signature.verdict == fuzz::Verdict::kCrash &&
        f.signature.detail.find("planted") != std::string::npos) {
      planted_found = true;
      if (f.shrink.records_after > 0) {
        shrink_ratio = static_cast<double>(f.shrink.records_before) /
                       static_cast<double>(f.shrink.records_after);
      }
    }
    check(f.shrink.verified,
          "finding " + f.signature.str() + " shrunk and re-verified");
    check(f.shrink.records_after <= 10,
          "finding " + f.signature.str() + " reproducer <= 10 records (got " +
              std::to_string(f.shrink.records_after) + ")");
  }
  check(planted_found, "finding signature identifies the planted bug");

  // ---- Phase 2: fixed-exec determinism differential --------------------
  // Small fixed budget (independent of wall clock) at threads=1 vs
  // --threads: the canonical artifacts must be byte-identical.
  auto run_arm = [&](int t) {
    exec::FuzzOptions o = base_options(seed, t);
    o.max_execs = 128;
    return exec::FuzzCampaignRunner(seeds, std::move(o)).run();
  };
  const exec::FuzzReport serial = run_arm(1);
  const exec::FuzzReport parallel = run_arm(std::max(2, threads));
  check(serial.summary == parallel.summary,
        "threads=1 and threads=N summaries byte-identical");
  check(serial.corpus_digest == parallel.corpus_digest,
        "corpus digests identical across thread counts");
  check(serial.coverage_digest == parallel.coverage_digest,
        "coverage digests identical across thread counts");

  journal::arm_planted_decode_bug(false);

  htbench::BenchReport bench("fuzz_campaign");
  bench.param("seed", static_cast<long long>(seed))
      .param("threads", static_cast<long long>(threads))
      .param("seconds", seconds)
      .metric("execs_per_s", execs_per_s)
      .metric("time_to_first_finding_s",
              first_finding_s >= 0 ? first_finding_s : -1)
      .metric("shrink_ratio", shrink_ratio)
      .metric("corpus_entries", static_cast<double>(report.corpus_entries))
      .metric("coverage_buckets", static_cast<double>(report.coverage_buckets))
      .metric("findings", static_cast<double>(report.findings.size()))
      .metric("deterministic", failures == 0 ? 1.0 : 0.0);
  bench.write();

  if (failures != 0) {
    std::cout << failures << " check(s) failed\n";
    return 1;
  }
  std::cout << "fuzz campaign gate passed\n";
  return 0;
}
