// Evasion sweep — timing-aware evasive rootkits vs monitor hardening.
//
// Sweeps every EvasionTactic against every countermeasure arm (none, each
// countermeasure alone, the full hardened stack) and reports, per cell,
// whether the rootkit struck, whether HRKD caught the hidden victim, and
// whether the strike evaded detection outright.
//
// CI gates (exit 1 on violation):
//  * the unhardened "none" arm must be exploitable — >= 3 of 4 tactics
//    evade (otherwise the red team is not exercising a real blind spot);
//  * the "hardened" arm must cover >= 90% of tactics (detected or
//    neutralized), and strictly more than the unhardened arm covers.
//
// --quick runs only the gated pair of arms (asan CI budget) and skips the
// thread-count differential.
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "attacks/evasive.hpp"
#include "bench_report.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

namespace {

struct ArmSummary {
  int cells = 0;
  int struck = 0;
  int detected = 0;
  int evaded = 0;
  /// Covered = the monitor won the cell: strike detected, or the tactic
  /// was neutralized into never striking (blinded probes).
  int covered = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  attacks::EvasionSweepConfig cfg;
  cfg.seed = 2014;
  cfg.threads = 8;
  cfg.quick = quick;

  std::cout << "EVASION SWEEP: timing-aware rootkits vs monitor hardening"
            << (quick ? " (quick: gated arms only)" : "") << "\n\n";

  const auto outcomes = attacks::run_evasion_campaign(cfg);

  TablePrinter tp({"Arm", "Tactic", "Struck", "Detected", "Evaded",
                   "Probes", "Loud", "Blind fallback"});
  htbench::BenchReport report("evasion_sweep");
  report.param("seed", static_cast<long long>(cfg.seed))
      .param("threads", cfg.threads)
      .param("quick", quick ? "true" : "false");

  std::map<std::string, ArmSummary> arms;
  for (const auto& o : outcomes) {
    const auto& r = o.result;
    tp.add_row({o.arm, o.tactic, r.struck ? "yes" : "no",
                r.detected ? "YES" : "no", r.evaded ? "YES" : "no",
                std::to_string(r.probes), std::to_string(r.loud_samples),
                r.blind_fallback ? "yes" : "no"});
    ArmSummary& a = arms[o.arm];
    ++a.cells;
    a.struck += r.struck ? 1 : 0;
    a.detected += r.detected ? 1 : 0;
    a.evaded += r.evaded ? 1 : 0;
    a.covered += (r.detected || !r.struck) ? 1 : 0;
    const std::string key = o.arm + "." + o.tactic;
    report.metric(key + ".struck", r.struck ? 1 : 0)
        .metric(key + ".detected", r.detected ? 1 : 0)
        .metric(key + ".evaded", r.evaded ? 1 : 0)
        .metric(key + ".probes", static_cast<double>(r.probes))
        .metric(key + ".rdtsc_exits", static_cast<double>(r.rdtsc_exits));
  }
  std::cout << tp.str() << "\n";

  TablePrinter sp({"Arm", "Cells", "Evaded", "Coverage"});
  for (const auto& [name, a] : arms) {
    const double cov = a.cells > 0 ? double(a.covered) / a.cells : 0.0;
    sp.add_row({name, std::to_string(a.cells), std::to_string(a.evaded),
                format_double(cov, 2)});
    report.metric(name + ".coverage", cov)
        .metric(name + ".evasions", a.evaded);
  }
  std::cout << sp.str() << "\n";

  // Determinism differential: the campaign folds worker-pool results by
  // stable cell index, so any thread count must produce byte-identical
  // outcomes. (Skipped in --quick: asan already runs the logic once.)
  if (!quick) {
    auto cfg1 = cfg;
    cfg1.threads = 1;
    const std::string d1 =
        attacks::outcome_digest(attacks::run_evasion_campaign(cfg1));
    const std::string d8 = attacks::outcome_digest(outcomes);
    report.metric("digest_match_threads_1_vs_8", d1 == d8 ? 1 : 0);
    if (d1 != d8) {
      std::cout << "FAIL: threads=1 and threads=8 campaigns diverge\n";
      report.write();
      return 1;
    }
    std::cout << "determinism: threads=1 == threads=8 ("
              << outcomes.size() << " cells)\n";
  }

  const ArmSummary& none = arms["none"];
  const ArmSummary& hard = arms["hardened"];
  const double none_cov = none.cells > 0 ? double(none.covered) / none.cells : 0;
  const double hard_cov = hard.cells > 0 ? double(hard.covered) / hard.cells : 0;
  report.horizon(3'000'000'000LL * static_cast<long long>(outcomes.size()));
  report.write();

  bool ok = true;
  if (none.evaded < 3) {
    std::cout << "FAIL: unhardened arm evaded only " << none.evaded
              << "/4 tactics (expected >= 3: the blind spot must be real)\n";
    ok = false;
  }
  if (hard_cov < 0.9) {
    std::cout << "FAIL: hardened coverage " << format_double(hard_cov, 2)
              << " < 0.90\n";
    ok = false;
  }
  if (hard_cov <= none_cov) {
    std::cout << "FAIL: hardening did not improve coverage ("
              << format_double(hard_cov, 2) << " vs "
              << format_double(none_cov, 2) << " unhardened)\n";
    ok = false;
  }
  if (ok) {
    std::cout << "paper shape: deterministic audits leak a learnable duty "
                 "cycle; TSC offsetting + jitter + randomized audits close "
                 "the timing channel (hardened coverage "
              << format_double(hard_cov, 2) << " vs "
              << format_double(none_cov, 2) << " unhardened).\n";
  }
  return ok ? 0 : 1;
}
