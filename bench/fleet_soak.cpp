// Fleet-soak bench + supervisor-decision latency gate (CI): drive the
// hierarchical supervision tree over synthetic fleets of 1k and 10k
// managers and measure the wall-clock cost of one root tick — the
// cross-VM decision made at every epoch barrier.
//
// The managers implement recovery::Supervisable directly (no guest, no
// auditors, kDetachedVm slots) so the bench measures the real scheduler:
// pending-set draining, the lazy-deletion deadline heap, the remediation
// gate, the per-epoch journal checkpoint. A small deterministic fraction
// of the fleet "flaps" (incident -> remediation -> probation -> healthy on
// a seeded schedule); the rest stay quiescent forever, which is exactly
// what the O(active) claim is about: tick latency must track the flapping
// few, not the fleet size.
//
// Exit status is the gate:
//  - ticks_delivered must stay O(active): within 4x of the flapping
//    fleet's own demand and far below epochs * managers;
//  - two identical 1k runs must render byte-identical ledgers
//    (determinism of the tree itself, no sim underneath);
//  - p99 root-tick latency at 10k managers must stay under a generous
//    ceiling (shared CI boxes are slow; the ratio 10k/1k is recorded in
//    the JSON for trend tracking but not gated — it is noise-dominated
//    at these absolute latencies).
//
// The soak also exercises the streaming observability plane end to end:
// every epoch barrier captures the canonically merged registry into a
// delta-encoded `.tlmstream`, an SloEngine evaluates declarative rules
// over the live stream (raising ht_slo_* alarms), and an IncidentReporter
// files incident_<vm>_<seq>.json post-mortems off those alarms. Additional
// gates: the stream must be byte-identical between the serial reference
// loop and exec::ShardedFleetHost at threads=1 and threads=8, the reader
// must round-trip every frame cleanly, and the SLO -> alarm -> incident
// path must actually fire.
//
// Artifacts: BENCH_fleet_soak.json plus fleet_soak_ledger_<n>.txt,
// fleet_soak_telemetry_<n>.json, fleet_soak_<n>.tlmstream and
// incident_*.json next to it (CI uploads all of them).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "core/auditor.hpp"
#include "exec/sharded_fleet.hpp"
#include "hv/multi_vm.hpp"
#include "journal/journal.hpp"
#include "recovery/fleet.hpp"
#include "recovery/supervisable.hpp"
#include "telemetry/incident.hpp"
#include "telemetry/slo.hpp"
#include "telemetry/stream.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"

using namespace hvsim;
using namespace hypertap;

namespace {

/// Minimal deterministic recovery state machine: healthy until the next
/// scheduled incident, then suspect (polling the remediation gate every
/// epoch), one remedy once the gate opens, a probation window, back to
/// healthy with the next incident drawn from the per-manager stream.
class SyntheticManager final : public recovery::Supervisable {
 public:
  SyntheticManager(u64 seed, u64 id, bool flapper, SimTime horizon)
      : rng_(util::stream_seed(seed, id)), horizon_(horizon) {
    if (flapper) next_incident_ = draw_incident(1'000'000'000);
  }

  void tick(SimTime now) override {
    switch (health_) {
      case recovery::VmHealth::kHealthy:
        if (next_incident_ >= 0 && now >= next_incident_) {
          health_ = recovery::VmHealth::kSuspect;
          incident_at_ = next_incident_;
          next_incident_ = -1;
        }
        break;
      case recovery::VmHealth::kSuspect: {
        if (gate_ && !gate_()) break;  // budget exhausted; retry next epoch
        if (pause_) pause_();
        recovery::RemediationRecord rec;
        rec.at = now;
        rec.attempt = 1;
        rec.kind = recovery::RemedyKind::kResync;
        rec.ok = true;
        rec.trigger = "synthetic-incident";
        history_.push_back(rec);
        if (on_remediated_) on_remediated_(rec);
        health_ = recovery::VmHealth::kProbation;
        probation_until_ = now + 1'000'000'000;  // 1 s
        break;
      }
      case recovery::VmHealth::kProbation:
        if (now >= probation_until_) {
          health_ = recovery::VmHealth::kHealthy;
          ++episodes_recovered_;
          mttr_total_ += now - incident_at_;
          ++mttr_samples_;
          next_incident_ = draw_incident(now);
        }
        break;
      default:
        break;
    }
  }

  recovery::VmHealth health() const override { return health_; }

  SimTime next_due(SimTime now) const override {
    switch (health_) {
      case recovery::VmHealth::kHealthy:
        return next_incident_;  // -1 = quiescent forever
      case recovery::VmHealth::kSuspect:
        return now;  // gate-blocked: poll every epoch
      case recovery::VmHealth::kProbation:
        return probation_until_;
      default:
        return -1;
    }
  }

  void set_attention_hook(std::function<void()> fn) override {
    attention_ = std::move(fn);
  }
  void set_remediation_gate(std::function<bool()> gate) override {
    gate_ = std::move(gate);
  }
  void set_pause_hook(std::function<void()> fn) override {
    pause_ = std::move(fn);
  }
  void set_on_remediated(
      std::function<void(const recovery::RemediationRecord&)> fn) override {
    on_remediated_ = std::move(fn);
  }

  const std::vector<recovery::RemediationRecord>& history() const override {
    return history_;
  }
  u64 episodes_recovered() const override { return episodes_recovered_; }
  SimTime mttr_total() const override { return mttr_total_; }
  u64 mttr_samples() const override { return mttr_samples_; }
  u64 checkpoint_bytes() const override { return 0; }
  u64 gate_timeouts() const override { return 0; }

  /// Ticks this manager would demand if scheduling were perfect: one per
  /// incident onset, one per epoch gate-blocked (bounded below by 1), one
  /// to close probation. The bench compares delivered ticks against the
  /// sum of this across the fleet.
  u64 episodes_started() const { return static_cast<u64>(history_.size()); }

 private:
  SimTime draw_incident(SimTime after) {
    // Mean ~6 s between incidents; stop scheduling near the horizon so
    // every episode can close inside the run.
    const SimTime gap = 2'000'000'000 + static_cast<SimTime>(
                                            rng_.below(8'000'000'000ull));
    const SimTime at = after + gap;
    return at + 3'000'000'000 < horizon_ ? at : -1;
  }

  util::Rng rng_;
  SimTime horizon_;
  recovery::VmHealth health_ = recovery::VmHealth::kHealthy;
  SimTime next_incident_ = -1;
  SimTime incident_at_ = 0;
  SimTime probation_until_ = 0;
  u64 episodes_recovered_ = 0;
  SimTime mttr_total_ = 0;
  u64 mttr_samples_ = 0;
  std::vector<recovery::RemediationRecord> history_;

  std::function<void()> attention_;
  std::function<bool()> gate_;
  std::function<void()> pause_;
  std::function<void(const recovery::RemediationRecord&)> on_remediated_;
};

std::string artifact_path(const std::string& name) {
  std::string dir;
  if (const char* d = std::getenv("HYPERTAP_BENCH_DIR")) dir = d;
  return (dir.empty() ? "" : dir + "/") + name;
}

struct SoakResult {
  double mean_us = 0;
  double p99_us = 0;
  double max_us = 0;
  u64 epochs = 0;
  u64 ticks_delivered = 0;
  u64 demanded_ticks = 0;
  u64 remediations = 0;
  u64 recoveries = 0;
  std::string ledger_text;

  // Observability plane.
  u64 stream_frames = 0;
  u64 stream_bytes = 0;
  u32 stream_digest = 0;
  u64 stream_frames_read = 0;   ///< reader round-trip
  u64 stream_quarantined = 0;
  bool stream_torn = false;
  u64 slo_breaches = 0;
  u64 incidents = 0;
};

/// `stream_threads`: -1 runs the serial reference loop (root.tick driven
/// directly, stream captured after each tick exactly as the sharded
/// barrier does); >= 1 drives the same fleet through ShardedFleetHost at
/// that thread count. All arms must render identical ledgers AND
/// byte-identical streams.
SoakResult run_soak(std::size_t managers, u64 seed, bool write_artifacts,
                    int stream_threads = -1) {
  constexpr SimTime kTick = 250'000'000;    // 250 ms epochs
  constexpr SimTime kHorizon = 60'000'000'000;  // 60 simulated seconds
  constexpr std::size_t kRackSize = 64;
  const std::size_t flap_stride = 50;  // 2% of the fleet flaps

  hv::MultiVmHost host;  // empty: every slot is kDetachedVm
  recovery::RootSupervisor::Options opts;
  opts.max_concurrent_remediations = 8;
  opts.per_tenant_max_remediations = 2;
  opts.remediation_downtime = 500'000'000;
  opts.tick = kTick;
  recovery::RootSupervisor root(host, opts);

  std::vector<std::unique_ptr<SyntheticManager>> fleet;
  fleet.reserve(managers);
  for (std::size_t i = 0; i < managers; ++i) {
    fleet.push_back(std::make_unique<SyntheticManager>(
        seed, static_cast<u64>(i), i % flap_stride == 0, kHorizon));
    root.manage(i / kRackSize, recovery::RootSupervisor::kDetachedVm,
                *fleet.back(), nullptr, /*tenant=*/i % 16);
  }

  telemetry::Telemetry tel;
  root.set_telemetry(&tel);
  journal::MemoryJournalStore store;
  journal::JournalWriter writer(store);
  root.set_journal(&writer);

  // ---- Streaming observability plane ----------------------------------
  journal::MemoryJournalStore stream_store;
  telemetry::SnapshotStreamer streamer(stream_store);
  AlarmSink slo_alarms;
  telemetry::SloEngine slo(telemetry::parse_slo_rules(
      // Progress: the fleet must be remediating (gauge goes positive)...
      "soak-remediations: threshold ht_fleet_remediations above 0\n"
      // ...and must not stall: the remediation series going quiet for
      // 15 s of simulated time on a flapping fleet means the scheduler
      // wedged.
      "soak-stall: absence ht_fleet_remediations 15s for 2\n"));
  slo.set_alarm_sink(&slo_alarms);
  slo.set_telemetry(&tel);
  slo.observe(streamer);
  telemetry::IncidentReporter::Options iopt;
  if (write_artifacts) {
    const char* d = std::getenv("HYPERTAP_BENCH_DIR");
    iopt.dir = d != nullptr ? d : ".";
  }
  telemetry::IncidentReporter reporter(iopt);
  reporter.set_telemetry(&tel, 0);
  reporter.attach(slo_alarms);

  SoakResult r;
  std::vector<double> lat_us;
  if (stream_threads < 0) {
    // Serial reference arm: drive the root directly, timing each tick,
    // and capture the stream after every barrier exactly as
    // ShardedFleetHost::run_until does (canonical merge, then capture).
    lat_us.reserve(static_cast<std::size_t>(kHorizon / kTick) + 1);
    for (SimTime cursor = kTick; cursor <= kHorizon; cursor += kTick) {
      const auto t0 = std::chrono::steady_clock::now();
      root.tick(cursor);
      lat_us.push_back(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count());
      telemetry::Registry merged;
      merged.merge_from(tel.registry);
      streamer.capture(cursor, merged);
    }
  } else {
    exec::ShardedFleetHost::Options sopts;
    sopts.threads = stream_threads;
    exec::ShardedFleetHost sharded(host, sopts);
    sharded.set_supervisor(&root);  // adopts the supervisor tick as epoch
    sharded.set_stream(&streamer, {&tel.registry});
    const auto t0 = std::chrono::steady_clock::now();
    sharded.run_until(kHorizon);
    lat_us.push_back(std::chrono::duration<double, std::micro>(
                         std::chrono::steady_clock::now() - t0)
                         .count() /
                     static_cast<double>(sharded.epochs()));
  }
  r.epochs = root.epochs();

  double sum = 0;
  for (double v : lat_us) sum += v;
  std::sort(lat_us.begin(), lat_us.end());
  r.mean_us = sum / static_cast<double>(lat_us.size());
  r.p99_us = lat_us[(lat_us.size() * 99) / 100 == lat_us.size()
                        ? lat_us.size() - 1
                        : (lat_us.size() * 99) / 100];
  r.max_us = lat_us.back();

  for (std::size_t i = 0; i < root.num_racks(); ++i) {
    r.ticks_delivered += root.rack(i).ticks_delivered();
  }
  for (const auto& m : fleet) {
    // Perfect-scheduler demand: every manager is armed once; each episode
    // costs roughly onset + remedy + probation-close plus gate-blocked
    // polls (bounded by the downtime window in epochs).
    r.demanded_ticks += 1 + m->episodes_started() * 3;
  }
  const auto ledger = root.ledger();
  r.remediations = ledger.remediations;
  r.recoveries = ledger.recoveries;
  r.ledger_text = root.ledger_text();

  r.stream_frames = streamer.frames();
  r.stream_bytes = streamer.bytes_written();
  r.stream_digest = journal::store_digest(stream_store);
  r.slo_breaches = slo.breaches_total();
  r.incidents = reporter.incidents().size();
  telemetry::SnapshotStreamReader reader(stream_store);
  while (reader.next()) ++r.stream_frames_read;
  r.stream_quarantined = reader.quarantined();
  r.stream_torn = reader.torn_tail();

  if (write_artifacts) {
    const std::string n = std::to_string(managers);
    std::ofstream lf(artifact_path("fleet_soak_ledger_" + n + ".txt"));
    lf << r.ledger_text;
    std::ofstream tf(artifact_path("fleet_soak_telemetry_" + n + ".json"));
    tf << tel.registry.json();
    std::ofstream sf(artifact_path("fleet_soak_" + n + ".tlmstream"),
                     std::ios::binary);
    for (const std::string& seg : stream_store.segments()) {
      const std::vector<u8> body = stream_store.read(seg);
      sf.write(reinterpret_cast<const char*>(body.data()),
               static_cast<std::streamsize>(body.size()));
    }
  }
  return r;
}

}  // namespace

int main() {
  htbench::BenchReport report("fleet_soak");
  report.param("seed", 2014);
  report.param("epochs_horizon_s", 60);
  report.horizon(60'000'000'000);

  bool failed = false;
  std::cout << "fleet_soak: supervisor-decision latency\n\n";
  std::cout << "managers  mean_us   p99_us   max_us  ticks_delivered  "
               "remediations  recoveries\n";

  SoakResult r1k_a;
  double p99_10k_us = 0;
  for (const std::size_t n : {std::size_t{1'000}, std::size_t{10'000}}) {
    const SoakResult r = run_soak(n, 2014, /*write_artifacts=*/true);
    std::printf("%8zu  %7.1f  %7.1f  %7.1f  %15llu  %12llu  %10llu\n", n,
                r.mean_us, r.p99_us, r.max_us,
                static_cast<unsigned long long>(r.ticks_delivered),
                static_cast<unsigned long long>(r.remediations),
                static_cast<unsigned long long>(r.recoveries));
    const std::string k = "n" + std::to_string(n) + ".";
    report.metric(k + "tick_mean_us", r.mean_us);
    report.metric(k + "tick_p99_us", r.p99_us);
    report.metric(k + "tick_max_us", r.max_us);
    report.metric(k + "epochs", static_cast<double>(r.epochs));
    report.metric(k + "ticks_delivered",
                  static_cast<double>(r.ticks_delivered));
    report.metric(k + "demanded_ticks", static_cast<double>(r.demanded_ticks));
    report.metric(k + "remediations", static_cast<double>(r.remediations));
    report.metric(k + "recoveries", static_cast<double>(r.recoveries));

    // O(active) gate: delivered ticks must track the flapping few, not the
    // fleet. The 4x slack covers gate-blocked polling and stale heap
    // entries (one idempotent extra tick each, by design).
    const u64 naive = r.epochs * n;
    report.metric(k + "naive_ticks", static_cast<double>(naive));
    if (r.ticks_delivered > r.demanded_ticks * 4 ||
        r.ticks_delivered * 10 > naive) {
      std::cerr << "FAIL: scheduling is not O(active) at n=" << n << ": "
                << r.ticks_delivered << " delivered vs " << r.demanded_ticks
                << " demanded (naive " << naive << ")\n";
      failed = true;
    }
    if (r.remediations == 0 || r.recoveries == 0) {
      std::cerr << "FAIL: soak produced no episodes at n=" << n << "\n";
      failed = true;
    }
    if (n == 1'000) r1k_a = r;
    if (n == 10'000) p99_10k_us = r.p99_us;
  }

  // Determinism of the tree itself: same fleet, same seed, same ledger.
  const SoakResult r1k_b = run_soak(1'000, 2014, /*write_artifacts=*/false);
  if (r1k_b.ledger_text != r1k_a.ledger_text) {
    std::cerr << "FAIL: two identical 1k soaks rendered different ledgers\n";
    failed = true;
  }

  // Stream determinism: the serial reference arm and ShardedFleetHost at
  // threads=1 and threads=8 must emit byte-identical `.tlmstream` bytes
  // (the digest covers segment names + bodies).
  const SoakResult st1 = run_soak(1'000, 2014, false, /*stream_threads=*/1);
  const SoakResult st8 = run_soak(1'000, 2014, false, /*stream_threads=*/8);
  report.metric("stream.frames", static_cast<double>(r1k_a.stream_frames));
  report.metric("stream.bytes", static_cast<double>(r1k_a.stream_bytes));
  report.metric("stream.digest", static_cast<double>(r1k_a.stream_digest));
  report.metric("stream.slo_breaches",
                static_cast<double>(r1k_a.slo_breaches));
  report.metric("stream.incidents", static_cast<double>(r1k_a.incidents));
  if (r1k_a.stream_frames == 0) {
    std::cerr << "FAIL: soak emitted no stream frames\n";
    failed = true;
  }
  if (st1.stream_digest != r1k_a.stream_digest ||
      st8.stream_digest != r1k_a.stream_digest ||
      st1.stream_frames != r1k_a.stream_frames ||
      st8.stream_frames != r1k_a.stream_frames) {
    std::cerr << "FAIL: stream not thread-count-invariant: serial digest="
              << r1k_a.stream_digest << "/" << r1k_a.stream_frames
              << " frames, t1=" << st1.stream_digest << "/"
              << st1.stream_frames << ", t8=" << st8.stream_digest << "/"
              << st8.stream_frames << "\n";
    failed = true;
  }
  // Reader round-trip: every appended frame must come back intact.
  if (r1k_a.stream_frames_read != r1k_a.stream_frames ||
      r1k_a.stream_quarantined != 0 || r1k_a.stream_torn) {
    std::cerr << "FAIL: stream round-trip: " << r1k_a.stream_frames_read
              << "/" << r1k_a.stream_frames << " frames read, quarantined="
              << r1k_a.stream_quarantined
              << " torn=" << (r1k_a.stream_torn ? 1 : 0) << "\n";
    failed = true;
  }
  // The SLO -> alarm -> incident path must actually fire: the progress
  // rule breaches as soon as the fleet remediates, and the reporter files
  // a post-mortem for it.
  if (r1k_a.slo_breaches == 0 || r1k_a.incidents == 0) {
    std::cerr << "FAIL: observability plane silent: slo_breaches="
              << r1k_a.slo_breaches << " incidents=" << r1k_a.incidents
              << "\n";
    failed = true;
  }

  // Latency gate: generous absolute ceiling (shared CI boxes), still tight
  // enough to catch an accidental O(fleet) scan per epoch at 10k managers.
  const double kP99CeilingUs = 20'000.0;
  report.metric("p99_ceiling_us", kP99CeilingUs);
  report.write();
  if (p99_10k_us > kP99CeilingUs) {
    std::cerr << "FAIL: p99 supervisor-decision latency at 10k managers is "
              << p99_10k_us << " us (ceiling " << kP99CeilingUs << ")\n";
    failed = true;
  }
  if (failed) return 1;
  std::cout << "\nfleet_soak: O(active) + determinism gates PASSED\n";
  return 0;
}
