// Machine-readable bench output: every harness writes BENCH_<name>.json
// next to its human-readable table, so CI (and regression tooling) can
// diff runs without scraping stdout.
//
// Schema:
//   {
//     "bench": "<name>",
//     "params": {"<key>": <string|number>, ...},
//     "metrics": {"<key>": <number>, ...}
//   }
//
// Metrics are a flat map; multi-row tables flatten with dotted keys
// (e.g. "hanoi.detect_s_p90"). Writing happens in one shot at the end so
// an interrupted run leaves no half-written file behind.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace htbench {

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport& param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, hvsim::telemetry::json_str(value));
    return *this;
  }
  BenchReport& param(const std::string& key, double value) {
    params_.emplace_back(key, hvsim::telemetry::json_num(value));
    return *this;
  }
  BenchReport& param(const std::string& key, long long value) {
    params_.emplace_back(
        key, hvsim::telemetry::json_num(static_cast<std::int64_t>(value)));
    return *this;
  }
  BenchReport& param(const std::string& key, int value) {
    return param(key, static_cast<long long>(value));
  }

  BenchReport& metric(const std::string& key, double value) {
    metrics_.emplace_back(key, hvsim::telemetry::json_num(value));
    return *this;
  }

  std::string json() const {
    std::string out = "{\"bench\":" + hvsim::telemetry::json_str(name_);
    out += ",\"params\":{";
    append_map(out, params_);
    out += "},\"metrics\":{";
    append_map(out, metrics_);
    out += "}}\n";
    return out;
  }

  /// Write BENCH_<name>.json into the current directory (or the directory
  /// named by HYPERTAP_BENCH_DIR).
  void write() const {
    std::string dir;
    if (const char* d = std::getenv("HYPERTAP_BENCH_DIR")) dir = d;
    const std::string path =
        (dir.empty() ? "" : dir + "/") + "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench_report: cannot write " << path << "\n";
      return;
    }
    os << json();
    std::cerr << "bench_report: wrote " << path << "\n";
  }

 private:
  static void append_map(
      std::string& out,
      const std::vector<std::pair<std::string, std::string>>& kv) {
    for (std::size_t i = 0; i < kv.size(); ++i) {
      if (i > 0) out += ',';
      out += hvsim::telemetry::json_str(kv[i].first);
      out += ':';
      out += kv[i].second;
    }
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> params_;  ///< key -> json
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace htbench
