// Machine-readable bench output: every harness writes BENCH_<name>.json
// next to its human-readable table, so CI (and regression tooling) can
// diff runs without scraping stdout.
//
// Schema (v2):
//   {
//     "bench": "<name>",
//     "schema": "hypertap-bench-v2",
//     "preset": "default" | "asan" | "tsan" | "telemetry-off",
//     "sim_horizon_ns": <number>,   // simulated time driven, -1 = n/a
//     "params": {"<key>": <string|number>, ...},
//     "metrics": {"<key>": <number>, ...}
//   }
//
// The provenance header (schema version, build preset, simulated horizon)
// is stamped on every report so regression tooling never diffs an asan
// artifact against a default one, or a 30 s soak against a 5 min one,
// without noticing.
//
// Metrics are a flat map; multi-row tables flatten with dotted keys
// (e.g. "hanoi.detect_s_p90"). Writing happens in one shot at the end so
// an interrupted run leaves no half-written file behind.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hpp"

namespace htbench {

/// Build preset this binary was compiled under, for artifact provenance.
/// Sanitizer macros: GCC defines __SANITIZE_*__; clang exposes the same
/// via __has_feature.
inline const char* build_preset() {
#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(__SANITIZE_ADDRESS__)
#define __SANITIZE_ADDRESS__ 1
#endif
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif
#if defined(HYPERTAP_TELEMETRY_DISABLED)
  return "telemetry-off";
#elif defined(__SANITIZE_ADDRESS__)
  return "asan";
#elif defined(__SANITIZE_THREAD__)
  return "tsan";
#else
  return "default";
#endif
}

class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchReport& param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, hvsim::telemetry::json_str(value));
    return *this;
  }
  BenchReport& param(const std::string& key, double value) {
    params_.emplace_back(key, hvsim::telemetry::json_num(value));
    return *this;
  }
  BenchReport& param(const std::string& key, long long value) {
    params_.emplace_back(
        key, hvsim::telemetry::json_num(static_cast<std::int64_t>(value)));
    return *this;
  }
  BenchReport& param(const std::string& key, int value) {
    return param(key, static_cast<long long>(value));
  }

  BenchReport& metric(const std::string& key, double value) {
    metrics_.emplace_back(key, hvsim::telemetry::json_num(value));
    return *this;
  }

  /// Simulated time this bench drove (ns). Unset reports stamp -1.
  BenchReport& horizon(long long ns) {
    horizon_ns_ = ns;
    return *this;
  }

  std::string json() const {
    std::string out = "{\"bench\":" + hvsim::telemetry::json_str(name_);
    out += ",\"schema\":\"hypertap-bench-v2\"";
    out += ",\"preset\":" + hvsim::telemetry::json_str(build_preset());
    out += ",\"sim_horizon_ns\":" +
           hvsim::telemetry::json_num(static_cast<std::int64_t>(horizon_ns_));
    out += ",\"params\":{";
    append_map(out, params_);
    out += "},\"metrics\":{";
    append_map(out, metrics_);
    out += "}}\n";
    return out;
  }

  /// Write BENCH_<name>.json into the current directory (or the directory
  /// named by HYPERTAP_BENCH_DIR).
  void write() const {
    std::string dir;
    if (const char* d = std::getenv("HYPERTAP_BENCH_DIR")) dir = d;
    const std::string path =
        (dir.empty() ? "" : dir + "/") + "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench_report: cannot write " << path << "\n";
      return;
    }
    os << json();
    std::cerr << "bench_report: wrote " << path << "\n";
  }

 private:
  static void append_map(
      std::string& out,
      const std::vector<std::pair<std::string, std::string>>& kv) {
    for (std::size_t i = 0; i < kv.size(); ++i) {
      if (i > 0) out += ',';
      out += hvsim::telemetry::json_str(kv[i].first);
      out += ':';
      out += kv[i].second;
    }
  }

  std::string name_;
  long long horizon_ns_ = -1;
  std::vector<std::pair<std::string, std::string>> params_;  ///< key -> json
  std::vector<std::pair<std::string, std::string>> metrics_;
};

}  // namespace htbench
