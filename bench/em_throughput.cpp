// Microbenchmark: the unified logging channel's data path.
//
// google-benchmark over (a) the lock-free SPSC ring that carries events
// from the Event Forwarder to an auditing container, single-threaded and
// with a real producer/consumer thread pair; and (b) Event Multiplexer
// fan-out to multiple registered auditors.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/event.hpp"
#include "core/event_multiplexer.hpp"
#include "core/hypertap.hpp"
#include "util/ring_buffer.hpp"

using namespace hvsim;
using namespace hypertap;

namespace {

Event make_event(u64 i) {
  Event e;
  e.kind = EventKind::kSyscall;
  e.vcpu = static_cast<int>(i & 1);
  e.time = static_cast<SimTime>(i);
  e.sc_nr = static_cast<u8>(i % 20);
  return e;
}

void BM_RingPushPop(benchmark::State& state) {
  util::SpscRing<Event> ring(1024);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(make_event(i++)));
    auto popped = ring.try_pop();
    benchmark::DoNotOptimize(popped);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_RingPushPop);

void BM_RingThreaded(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    util::SpscRing<Event> ring(4096);
    constexpr u64 kCount = 200'000;
    state.ResumeTiming();

    std::thread consumer([&ring]() {
      u64 got = 0;
      while (got < kCount) {
        if (auto e = ring.try_pop()) {
          benchmark::DoNotOptimize(*e);
          ++got;
        }
      }
    });
    u64 sent = 0;
    while (sent < kCount) {
      if (ring.try_push(make_event(sent))) ++sent;
    }
    consumer.join();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<i64>(kCount));
  }
}
BENCHMARK(BM_RingThreaded)->Unit(benchmark::kMillisecond);

class NullAuditor final : public Auditor {
 public:
  std::string name() const override { return "null"; }
  EventMask subscriptions() const override { return kAllEvents; }
  void on_event(const Event& e, AuditContext&) override {
    benchmark::DoNotOptimize(e.time);
  }
};

void BM_MultiplexerFanout(benchmark::State& state) {
  const int n_auditors = static_cast<int>(state.range(0));
  os::Vm vm;  // provides vCPU + hypervisor context for delivery
  HyperTap ht(vm);
  EventMultiplexer em;
  std::vector<std::unique_ptr<NullAuditor>> auditors;
  for (int i = 0; i < n_auditors; ++i) {
    auditors.push_back(std::make_unique<NullAuditor>());
    em.register_auditor(auditors.back().get(), ht.context());
  }
  u64 i = 0;
  for (auto _ : state) {
    em.deliver(vm.machine.vcpu(0), make_event(i++), ht.context());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          n_auditors);
}
BENCHMARK(BM_MultiplexerFanout)->Arg(1)->Arg(3)->Arg(8);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_em_throughput.json so every run leaves a machine-readable record
// (an explicit --benchmark_out on the command line still wins).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
      has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_em_throughput.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out)
    std::cerr << "bench_report: wrote BENCH_em_throughput.json\n";
  return 0;
}
