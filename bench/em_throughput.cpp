// Microbenchmark: the unified logging channel's data path.
//
// google-benchmark over (a) the lock-free SPSC ring that carries events
// from the Event Forwarder to an auditing container, single-threaded and
// with a real producer/consumer thread pair; (b) Event Multiplexer
// fan-out to multiple registered auditors; and (c) the zero-copy batched
// transport (EventArena + EventRef rings) against the legacy per-event
// Event-copy transport at the same fan-out.
//
// `--gate` runs the self-check CI uses instead of the benchmark suite:
//   1. unit-vs-batched JournalWriter over the same record sequence must
//      produce byte-identical stores (same digest), and
//   2. the batched fan-out transport must beat the legacy per-event one
//      by the events/sec floor (10x; 2x under sanitizers, whose
//      per-access checks flatten the byte-count advantage).
// Exit status is the verdict, and the measurements land in
// BENCH_em_throughput_gate.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/event.hpp"
#include "core/event_arena.hpp"
#include "core/event_multiplexer.hpp"
#include "core/hypertap.hpp"
#include "journal/journal.hpp"
#include "util/ring_buffer.hpp"

using namespace hvsim;
using namespace hypertap;

namespace {

Event make_event(u64 i) {
  Event e;
  e.kind = EventKind::kSyscall;
  e.vcpu = static_cast<int>(i & 1);
  e.time = static_cast<SimTime>(i);
  e.sc_nr = static_cast<u8>(i % 20);
  return e;
}

void BM_RingPushPop(benchmark::State& state) {
  util::SpscRing<Event> ring(1024);
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(make_event(i++)));
    auto popped = ring.try_pop();
    benchmark::DoNotOptimize(popped);
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_RingPushPop);

void BM_RingThreaded(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    util::SpscRing<Event> ring(4096);
    constexpr u64 kCount = 200'000;
    state.ResumeTiming();

    std::thread consumer([&ring]() {
      u64 got = 0;
      while (got < kCount) {
        if (auto e = ring.try_pop()) {
          benchmark::DoNotOptimize(*e);
          ++got;
        }
      }
    });
    u64 sent = 0;
    while (sent < kCount) {
      if (ring.try_push(make_event(sent))) ++sent;
    }
    consumer.join();
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<i64>(kCount));
  }
}
BENCHMARK(BM_RingThreaded)->Unit(benchmark::kMillisecond);

class NullAuditor final : public Auditor {
 public:
  std::string name() const override { return "null"; }
  EventMask subscriptions() const override { return kAllEvents; }
  void on_event(const Event& e, AuditContext&) override {
    benchmark::DoNotOptimize(e.time);
  }
};

// ------------------- legacy vs batched fan-out transport -----------------
//
// Both arms move `count` events to `channels` consumer threads losslessly
// (full rings spin instead of dropping) and return delivered events/sec.
// The legacy arm is the pre-batching data path: one full Event copy into
// every channel's ring, one acquire/release atomic pair per event per
// ring. The batched arm is the zero-copy path: one arena copy, 8-byte
// EventRefs moved 64 at a time through try_push_n/pop_n.

constexpr std::size_t kXferBatch = 64;

double legacy_fanout_eps(int channels, u64 count) {
  std::vector<std::unique_ptr<util::SpscRing<Event>>> rings;
  for (int c = 0; c < channels; ++c)
    rings.push_back(std::make_unique<util::SpscRing<Event>>(1024));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> consumers;
  for (int c = 0; c < channels; ++c) {
    consumers.emplace_back([&ring = *rings[c], count]() {
      u64 got = 0;
      while (got < count) {
        if (auto e = ring.try_pop()) {
          benchmark::DoNotOptimize(e->time);
          ++got;
        }
      }
    });
  }
  for (u64 i = 0; i < count; ++i) {
    const Event e = make_event(i);
    for (auto& r : rings) {
      while (!r->try_push(e)) {
      }
    }
  }
  for (auto& t : consumers) t.join();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(count) / dt.count();
}

double batched_fanout_eps(int channels, u64 count) {
  EventArena arena(4096);
  std::vector<std::unique_ptr<util::SpscRing<EventRef>>> rings;
  for (int c = 0; c < channels; ++c)
    rings.push_back(std::make_unique<util::SpscRing<EventRef>>(1024));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> consumers;
  for (int c = 0; c < channels; ++c) {
    consumers.emplace_back([&ring = *rings[c], &arena, count]() {
      std::vector<EventRef> chunk(kXferBatch);
      u64 got = 0;
      while (got < count) {
        const std::size_t n = ring.pop_n(chunk.data(), chunk.size());
        for (std::size_t i = 0; i < n; ++i) {
          benchmark::DoNotOptimize(arena.at(chunk[i].slot).time);
          arena.release(chunk[i].slot);
        }
        got += n;
      }
    });
  }
  std::vector<std::vector<EventRef>> staged(static_cast<size_t>(channels));
  for (auto& s : staged) s.reserve(kXferBatch);
  auto flush = [&](int c) {
    auto& s = staged[static_cast<size_t>(c)];
    std::size_t pushed = 0;
    while (pushed < s.size())
      pushed += rings[static_cast<size_t>(c)]->try_push_n(s.data() + pushed,
                                                          s.size() - pushed);
    s.clear();
  };
  for (u64 i = 0; i < count; ++i) {
    const Event e = make_event(i);
    u32 idx;
    while ((idx = arena.acquire(e, static_cast<u32>(channels))) ==
           EventArena::kNone) {
      for (int c = 0; c < channels; ++c) flush(c);
    }
    for (int c = 0; c < channels; ++c) {
      auto& s = staged[static_cast<size_t>(c)];
      s.push_back(EventRef{idx, 0});
      if (s.size() >= kXferBatch) flush(c);
    }
  }
  for (int c = 0; c < channels; ++c) flush(c);
  for (auto& t : consumers) t.join();
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(count) / dt.count();
}

// Publish-path cost, measured without threads: the exit path's job is to
// get the event INTO every subscribed channel and return to the guest;
// consumers drain off the critical path. Timed region = publish burst of
// `kBurst` events into `channels` rings (space guaranteed); drains happen
// between bursts, untimed. This is the per-exit overhead the batching
// work exists to shrink, and it is stable on single-core CI runners where
// a threaded arm only measures the scheduler.
constexpr u64 kBurst = 512;

/// The events of one burst, built once: the Event Forwarder constructs the
/// event exactly once in either design, so construction is common cost and
/// stays OUT of the timed transport region.
const std::vector<Event>& burst_events() {
  static const std::vector<Event> events = [] {
    std::vector<Event> v;
    v.reserve(kBurst);
    for (u64 i = 0; i < kBurst; ++i) v.push_back(make_event(i));
    return v;
  }();
  return events;
}

double legacy_publish_eps(int channels, u64 count) {
  std::vector<std::unique_ptr<util::SpscRing<Event>>> rings;
  for (int c = 0; c < channels; ++c)
    rings.push_back(std::make_unique<util::SpscRing<Event>>(1024));
  const std::vector<Event>& events = burst_events();
  std::chrono::steady_clock::duration spent{0};
  u64 done = 0;
  while (done < count) {
    const u64 burst = std::min(kBurst, count - done);
    const auto t0 = std::chrono::steady_clock::now();
    for (u64 i = 0; i < burst; ++i) {
      for (auto& r : rings) benchmark::DoNotOptimize(r->try_push(events[i]));
    }
    spent += std::chrono::steady_clock::now() - t0;
    for (auto& r : rings) {  // drain, untimed
      while (auto e = r->try_pop()) benchmark::DoNotOptimize(e->time);
    }
    done += burst;
  }
  return static_cast<double>(count) /
         std::chrono::duration<double>(spent).count();
}

double batched_publish_eps(int channels, u64 count) {
  EventArena arena(2048);
  std::vector<std::unique_ptr<util::SpscRing<EventRef>>> rings;
  for (int c = 0; c < channels; ++c)
    rings.push_back(std::make_unique<util::SpscRing<EventRef>>(1024));
  std::vector<std::vector<EventRef>> staged(static_cast<size_t>(channels));
  for (auto& s : staged) s.reserve(kXferBatch);
  std::vector<EventRef> chunk(kXferBatch);
  const std::vector<Event>& events = burst_events();
  std::chrono::steady_clock::duration spent{0};
  u64 done = 0;
  while (done < count) {
    const u64 burst = std::min(kBurst, count - done);
    const auto t0 = std::chrono::steady_clock::now();
    for (u64 i = 0; i < burst; ++i) {
      const u32 idx =
          arena.acquire(events[i], static_cast<u32>(channels));
      for (int c = 0; c < channels; ++c) {
        auto& s = staged[static_cast<size_t>(c)];
        s.push_back(EventRef{idx, 0});
        if (s.size() >= kXferBatch) {
          benchmark::DoNotOptimize(
              rings[static_cast<size_t>(c)]->try_push_n(s.data(), s.size()));
          s.clear();
        }
      }
    }
    for (int c = 0; c < channels; ++c) {
      auto& s = staged[static_cast<size_t>(c)];
      if (!s.empty()) {
        benchmark::DoNotOptimize(
            rings[static_cast<size_t>(c)]->try_push_n(s.data(), s.size()));
        s.clear();
      }
    }
    spent += std::chrono::steady_clock::now() - t0;
    for (auto& r : rings) {  // drain + release, untimed
      std::size_t n;
      while ((n = r->pop_n(chunk.data(), chunk.size())) > 0) {
        for (std::size_t i = 0; i < n; ++i) {
          benchmark::DoNotOptimize(arena.at(chunk[i].slot).time);
          arena.release(chunk[i].slot);
        }
      }
    }
    done += burst;
  }
  return static_cast<double>(count) /
         std::chrono::duration<double>(spent).count();
}

// Channel-transport cost: what one event pays to CROSS the SPSC ring.
// This is the number EXPERIMENTS.md records as the pre-PR baseline
// (~34 M full-Event push/pop pairs per second) and the number the
// batched path multiplies: events now cross as 8-byte EventRefs, 64 per
// acquire/release pair, instead of as one full Event copy in and one
// out per pair.

double legacy_ring_eps(u64 count) {
  util::SpscRing<Event> ring(1024);
  const std::vector<Event>& events = burst_events();
  const auto t0 = std::chrono::steady_clock::now();
  for (u64 i = 0; i < count; ++i) {
    benchmark::DoNotOptimize(ring.try_push(events[i % kBurst]));
    auto e = ring.try_pop();
    benchmark::DoNotOptimize(e);
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(count) / dt.count();
}

double batched_ring_eps(u64 count) {
  util::SpscRing<EventRef> ring(1024);
  std::vector<EventRef> in(kXferBatch), out(kXferBatch);
  for (std::size_t i = 0; i < kXferBatch; ++i)
    in[i] = EventRef{static_cast<u32>(i), 0};
  const auto t0 = std::chrono::steady_clock::now();
  for (u64 done = 0; done < count; done += kXferBatch) {
    benchmark::DoNotOptimize(ring.try_push_n(in.data(), in.size()));
    benchmark::DoNotOptimize(ring.pop_n(out.data(), out.size()));
  }
  const std::chrono::duration<double> dt =
      std::chrono::steady_clock::now() - t0;
  return static_cast<double>(count) / dt.count();
}

void BM_FanoutLegacyThreaded(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  constexpr u64 kCount = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy_fanout_eps(channels, kCount));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<i64>(kCount));
  }
}
BENCHMARK(BM_FanoutLegacyThreaded)->Arg(3)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_FanoutBatchedThreaded(benchmark::State& state) {
  const int channels = static_cast<int>(state.range(0));
  constexpr u64 kCount = 100'000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(batched_fanout_eps(channels, kCount));
    state.SetItemsProcessed(state.items_processed() +
                            static_cast<i64>(kCount));
  }
}
BENCHMARK(BM_FanoutBatchedThreaded)->Arg(3)->Arg(8)->Unit(
    benchmark::kMillisecond);

void BM_RingPushPopBatched(benchmark::State& state) {
  util::SpscRing<EventRef> ring(1024);
  std::vector<EventRef> in(kXferBatch), out(kXferBatch);
  for (std::size_t i = 0; i < kXferBatch; ++i)
    in[i] = EventRef{static_cast<u32>(i), 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push_n(in.data(), in.size()));
    benchmark::DoNotOptimize(ring.pop_n(out.data(), out.size()));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(kXferBatch));
}
BENCHMARK(BM_RingPushPopBatched);

void BM_MultiplexerFanout(benchmark::State& state) {
  const int n_auditors = static_cast<int>(state.range(0));
  os::Vm vm;  // provides vCPU + hypervisor context for delivery
  HyperTap ht(vm);
  EventMultiplexer em;
  std::vector<std::unique_ptr<NullAuditor>> auditors;
  for (int i = 0; i < n_auditors; ++i) {
    auditors.push_back(std::make_unique<NullAuditor>());
    em.register_auditor(auditors.back().get(), ht.context());
  }
  u64 i = 0;
  for (auto _ : state) {
    em.deliver(vm.machine.vcpu(0), make_event(i++), ht.context());
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          n_auditors);
}
BENCHMARK(BM_MultiplexerFanout)->Arg(1)->Arg(3)->Arg(8);

// --------------------------------- gate ----------------------------------

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

/// Batching must never change what the journal SAYS: the same record
/// sequence through a unit writer and a batching writer must leave
/// byte-identical stores (and therefore the same digest), across segment
/// rotations.
bool gate_digest_identical() {
  journal::MemoryJournalStore unit_store, batched_store;
  {
    journal::JournalWriter::Options opts;
    opts.segment_bytes = 2048;  // force rotations
    journal::JournalWriter unit(unit_store, opts);
    opts.batch_bytes = 4096;
    journal::JournalWriter batched(batched_store, opts);
    for (u64 i = 1; i <= 400; ++i) {
      const Event e = make_event(i);
      unit.append_event(e);
      batched.append_event(e);
      if (i % 9 == 0) {
        unit.append_timer(static_cast<SimTime>(i) * 11, "gate");
        batched.append_timer(static_cast<SimTime>(i) * 11, "gate");
      }
      if (i % 13 == 0) {
        const Alarm a{static_cast<SimTime>(i) * 17, "gate", "tick",
                      "n=" + std::to_string(i), static_cast<int>(i % 2), 0};
        unit.append_alarm(a);
        batched.append_alarm(a);
      }
    }
  }  // destructors flush the batched tail
  if (unit_store.segments() != batched_store.segments()) return false;
  for (const auto& seg : unit_store.segments()) {
    if (unit_store.read(seg) != batched_store.read(seg)) return false;
  }
  return journal::store_digest(unit_store) ==
         journal::store_digest(batched_store);
}

int run_gate() {
  const bool digest_ok = gate_digest_identical();
  std::cerr << "gate: unit-vs-batched journal digest "
            << (digest_ok ? "identical" : "DIVERGED") << "\n";

  // Channel-transport floor: the ring is the unified logging channel's
  // carrier, and batching is what this PR changed about it — events cross
  // as 64-ref batches instead of one full-Event copy in and one out per
  // acquire/release pair. Best-of-N so a noisy CI neighbor cannot flunk
  // the gate; the floor is relaxed under sanitizers, whose per-access
  // instrumentation taxes the two arms differently.
  constexpr u64 kCount = 2'000'000;
  constexpr int kTrials = 5;
  const double floor = kSanitized ? 2.0 : 10.0;
  double legacy = 0.0, batched = 0.0, ratio = 0.0;
  for (int t = 0; t < kTrials; ++t) {
    const double l = legacy_ring_eps(kCount);
    const double b = batched_ring_eps(kCount);
    legacy = std::max(legacy, l);
    batched = std::max(batched, b);
    ratio = std::max(ratio, b / l);
    std::fprintf(stderr,
                 "gate: trial %d  legacy %.3g ev/s  batched %.3g ev/s  "
                 "ratio %.2fx\n",
                 t + 1, l, b, b / l);
  }
  const bool ratio_ok = ratio >= floor;

  // The fan-out publish path (exit-side cost at the paper's 8-auditor
  // regime) rides along in the report; it is informational, not gated —
  // on a single-core runner its ratio mostly reflects how cheap warm-L1
  // memcpy is, not the cross-core line-transfer amortization batching
  // buys on real hardware.
  constexpr int kChannels = 8;
  const double pub_legacy = legacy_publish_eps(kChannels, kCount / 5);
  const double pub_batched = batched_publish_eps(kChannels, kCount / 5);

  std::ofstream out("BENCH_em_throughput_gate.json");
  out << "{\n"
      << "  \"metric\": \"SPSC channel transport: full-Event unit "
         "push/pop vs 64-ref batched push_n/pop_n\",\n"
      << "  \"events_per_trial\": " << kCount << ",\n"
      << "  \"trials\": " << kTrials << ",\n"
      << "  \"sanitized\": " << (kSanitized ? "true" : "false") << ",\n"
      << "  \"legacy_transport_events_per_sec\": " << legacy << ",\n"
      << "  \"batched_transport_events_per_sec\": " << batched << ",\n"
      << "  \"best_ratio\": " << ratio << ",\n"
      << "  \"ratio_floor\": " << floor << ",\n"
      << "  \"publish_path_fanout\": " << kChannels << ",\n"
      << "  \"publish_path_legacy_events_per_sec\": " << pub_legacy << ",\n"
      << "  \"publish_path_batched_events_per_sec\": " << pub_batched
      << ",\n"
      << "  \"digest_identical\": " << (digest_ok ? "true" : "false") << ",\n"
      << "  \"pass\": " << (digest_ok && ratio_ok ? "true" : "false") << "\n"
      << "}\n";

  std::fprintf(stderr,
               "gate: transport best ratio %.2fx (floor %.1fx) -> %s; "
               "publish-path x%d %.3g -> %.3g ev/s; digest %s\n",
               ratio, floor, ratio_ok ? "PASS" : "FAIL", kChannels,
               pub_legacy, pub_batched, digest_ok ? "PASS" : "FAIL");
  return digest_ok && ratio_ok ? 0 : 1;
}

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_em_throughput.json so every run leaves a machine-readable record
// (an explicit --benchmark_out on the command line still wins).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gate") return run_gate();
  }
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
      has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_em_throughput.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out)
    std::cerr << "bench_report: wrote BENCH_em_throughput.json\n";
  return 0;
}
