// Ablation — unified vs. per-monitor logging, and blocking vs.
// non-blocking audit delivery (design choices of §IV-A / §V-B).
//
//  (a) Unified logging: one Event Forwarder decodes each exit once and
//      fans out to all auditors. The ablated variant attaches a separate
//      forwarder+multiplexer stack per auditor, paying the decode/forward
//      cost per monitor — the "co-deployed monitors" baseline the paper
//      argues against.
//  (b) Blocking audits charge analysis to the guest on every event;
//      non-blocking audits (HyperTap's default) run in the container.
#include <iostream>
#include <memory>

#include "auditors/goshd.hpp"
#include "bench_report.hpp"
#include "auditors/hrkd.hpp"
#include "auditors/ped.hpp"
#include "core/hypertap.hpp"
#include "util/stats.hpp"
#include "workloads/unixbench.hpp"
#include "workloads/workload.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

namespace {

/// HT-Ninja variant whose audit blocks the VM (Ninja-with-pause).
class BlockingHtNinja final : public auditors::HtNinja {
 public:
  bool blocking() const override { return true; }
  Cycles audit_cost_cycles() const override { return 6'000; }  // ~2 us
};

struct RunSpec {
  int forwarder_stacks = 1;  ///< 1 = unified; N = one stack per auditor
  bool blocking = false;
};

double run(const RunSpec& rs, u64 seed) {
  hv::MachineConfig mc;
  mc.seed = seed;
  os::KernelConfig kc;
  kc.spawn_factory = workloads::standard_factory(nullptr);
  os::Vm vm(mc, kc);

  // Primary stack (owns the shared alarms/derivation).
  HyperTap ht(vm);
  auto add_auditors = [&](HyperTap& target) {
    target.add_auditor(std::make_unique<auditors::Hrkd>(
        auditors::Hrkd::Config{},
        [&k = vm.kernel]() { return k.in_guest_view_pids(); }));
    if (rs.blocking) {
      target.add_auditor(std::make_unique<BlockingHtNinja>());
    } else {
      target.add_auditor(std::make_unique<auditors::HtNinja>());
    }
    target.add_auditor(
        std::make_unique<auditors::Goshd>(vm.machine.num_vcpus()));
  };
  add_auditors(ht);

  // Ablated variant: additional independent logging stacks, each paying
  // its own forward cost on every exit.
  std::vector<std::unique_ptr<HyperTap>> extra;
  for (int i = 1; i < rs.forwarder_stacks; ++i) {
    extra.push_back(std::make_unique<HyperTap>(vm));
    add_auditors(*extra.back());
  }

  vm.kernel.boot();

  // A syscall-heavy workload shows the channel cost most clearly.
  auto suite = workloads::unixbench_suite();
  const auto& spec = suite.back();  // System Call Overhead
  SimTime done_at = -1;
  auto w = workloads::make_unixbench(spec, seed);
  w->set_on_done([&done_at, &vm](SimTime t) {
    done_at = t;
    vm.machine.request_stop();
  });
  vm.kernel.spawn("bench", 1000, 1000, 1, std::move(w), 0, 0);
  vm.machine.run_for(120'000'000'000ll);
  vm.machine.clear_stop();
  return done_at > 0 ? static_cast<double>(done_at) / 1e9 : -1.0;
}

}  // namespace

int main() {
  std::cout << "ABLATION: logging-channel design choices (System Call "
               "Overhead benchmark, 3 auditors)\n\n";

  const double unified = run({1, false}, 99);
  const double triple = run({3, false}, 99);
  const double blocking = run({1, true}, 99);

  TablePrinter tp({"Configuration", "Completion (s)", "vs unified"});
  auto rel = [unified](double v) {
    return format_double((v - unified) / unified * 100.0, 1) + "%";
  };
  tp.add_row({"unified logging, non-blocking (HyperTap)",
              format_double(unified, 3), "0.0%"});
  tp.add_row({"one logging stack per monitor (x3)",
              format_double(triple, 3), rel(triple)});
  tp.add_row({"unified logging, blocking audits",
              format_double(blocking, 3), rel(blocking)});
  std::cout << tp.str();

  htbench::BenchReport report("ablation_unified_logging");
  report.param("seed", 99)
      .param("auditors", 3)
      .metric("unified_s", unified)
      .metric("per_monitor_stacks_s", triple)
      .metric("blocking_s", blocking);
  if (unified > 0) {
    report.metric("per_monitor_overhead_pct",
                  (triple - unified) / unified * 100.0)
        .metric("blocking_overhead_pct",
                (blocking - unified) / unified * 100.0);
  }
  report.write();

  std::cout << "\nUnifying the logging phase avoids paying the "
               "decode+forward cost once per monitor; non-blocking "
               "delivery keeps audit analysis off the guest's critical "
               "path.\n";
  return 0;
}
