// Fig. 4 — Guest OS Hang Detection coverage.
//
// Regenerates the figure's rows: for each workload (Hanoi, make -j1,
// make -j2, HTTP server) x fault persistence (transient, persistent) x
// kernel build (non-preemptible, preemptible), the outcome breakdown
// (Not Manifested / Not Detected / Not Activated / Partial Hang / Full
// Hang) of spinlock-fault injections across the 374-location registry.
//
// Environment:
//   HYPERTAP_FI_STRIDE  location subsampling stride (default 12;
//                       1 = all 374 locations, the paper-scale campaign)
#include <array>
#include <iostream>
#include <map>

#include "bench_report.hpp"
#include "fi_sweep.hpp"
#include "util/stats.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::TablePrinter;
using hvsim::util::percent;

int main() {
  const auto locations = fi::generate_locations();
  const int stride = htbench::env_int("HYPERTAP_FI_STRIDE", 12);

  std::cerr << "fig4: sweeping " << (locations.size() + stride - 1) / stride
            << " locations x 4 workloads x 2 persistence x 2 kernels ...\n";
  const auto cases = htbench::run_sweep(
      locations, stride, 2014, [](std::size_t i, std::size_t n) {
        if (i % 64 == 0) std::cerr << "  " << i << "/" << n << "\n";
      });

  // key: (workload, transient, preemptible)
  struct Bucket {
    std::array<u64, 5> outcome{};
    u64 total = 0;
  };
  std::map<std::tuple<int, bool, bool>, Bucket> buckets;
  u64 total = 0, manifested = 0, detected = 0, missed = 0, false_alarms = 0;
  for (const auto& c : cases) {
    auto& b = buckets[{static_cast<int>(c.cfg.workload), c.cfg.transient,
                       c.cfg.preemptible}];
    b.outcome[static_cast<std::size_t>(c.result.outcome)]++;
    b.total++;
    total++;
    const bool hang = c.result.outcome == fi::Outcome::kPartialHang ||
                      c.result.outcome == fi::Outcome::kFullHang;
    const bool probe_hang = c.result.outcome == fi::Outcome::kNotDetected;
    if (hang || probe_hang) ++manifested;
    if (hang) ++detected;
    if (probe_hang) ++missed;
    if (c.result.goshd_false_alarm) ++false_alarms;
  }

  std::cout << "FIG 4: GOSHD hang-detection coverage (" << total
            << " injections)\n\n";
  TablePrinter tp({"Workload", "Fault", "Kernel", "NotManif", "NotDetect",
                   "NotActiv", "Partial", "Full", "Partial%", "Full%"});
  for (const auto& [key, b] : buckets) {
    const auto [wk, transient, preempt] = key;
    auto pct = [&b](fi::Outcome o) {
      return percent(static_cast<double>(
                         b.outcome[static_cast<std::size_t>(o)]) /
                     static_cast<double>(b.total));
    };
    tp.add_row({to_string(static_cast<fi::WorkloadKind>(wk)),
                transient ? "transient" : "persistent",
                preempt ? "preempt" : "non-preempt",
                pct(fi::Outcome::kNotManifested),
                pct(fi::Outcome::kNotDetected),
                pct(fi::Outcome::kNotActivated),
                pct(fi::Outcome::kPartialHang),
                pct(fi::Outcome::kFullHang),
                pct(fi::Outcome::kPartialHang),
                pct(fi::Outcome::kFullHang)});
  }
  std::cout << tp.str();

  // Outcome breakdown by injected fault class (diagnostic view).
  std::map<std::string, std::array<u64, 5>> by_class;
  for (const auto& c : cases) {
    by_class[to_string(c.cfg.fault_class)]
            [static_cast<std::size_t>(c.result.outcome)]++;
  }
  std::cout << "\nBy fault class:\n";
  TablePrinter tc({"Fault class", "NotManif", "NotDetect", "NotActiv",
                   "Partial", "Full"});
  for (const auto& [name, o] : by_class) {
    tc.add_row({name, std::to_string(o[1]), std::to_string(o[2]),
                std::to_string(o[0]), std::to_string(o[3]),
                std::to_string(o[4])});
  }
  std::cout << tc.str();

  // The probe-path (sleeping-wait) locations — the source of the paper's
  // 24 misclassified "Not Detected" failures — run separately so location
  // subsampling does not overweight them; their contribution is then
  // folded in at their natural 2-in-374 frequency.
  u64 probe_runs = 0, probe_missed = 0;
  for (const auto& loc : locations) {
    if (!loc.sleeping_wait) continue;
    for (const fi::WorkloadKind wk : fi::kAllWorkloads) {
      for (const bool transient : {true, false}) {
        fi::RunConfig cfg;
        cfg.workload = wk;
        cfg.transient = transient;
        cfg.location = loc.id;
        cfg.fault_class = os::FaultClass::kMissingRelease;
        cfg.seed = 4242 + loc.id;
        const auto r = fi::run_one(cfg, locations);
        ++probe_runs;
        if (r.outcome == fi::Outcome::kNotDetected) ++probe_missed;
      }
    }
  }
  const double probe_miss_rate =
      probe_runs ? static_cast<double>(probe_missed) /
                       static_cast<double>(probe_runs)
                 : 0.0;
  // Natural weight of the probe paths in the full campaign.
  const double probe_weight = 2.0 / 374.0;
  const double est_missed_frac = probe_weight * probe_miss_rate;
  const double hang_frac =
      static_cast<double>(detected) / static_cast<double>(total);
  const double est_coverage =
      hang_frac / (hang_frac + est_missed_frac);

  const double coverage =
      manifested > 0
          ? static_cast<double>(detected) / static_cast<double>(manifested)
          : 0.0;
  std::cout << "\nSummary (paper: ~82% of injections manifested as hangs; "
               "coverage 99.8%; 18-26% partial hangs):\n";
  std::cout << "  injections:            " << total << "\n";
  std::cout << "  manifested as hangs:   " << manifested << " ("
            << percent(static_cast<double>(manifested) /
                       static_cast<double>(total))
            << " of injections)\n";
  std::cout << "  detected by GOSHD:     " << detected << " (coverage "
            << percent(coverage) << " of sampled hangs)\n";
  std::cout << "  probe-visible, missed: " << missed << "\n";
  std::cout << "  GOSHD false alarms:    " << false_alarms << "\n";
  std::cout << "\nProbe-path (SSH-server) locations: " << probe_missed
            << "/" << probe_runs
            << " injections wedge the probe while the kernel stays "
               "healthy ('Not Detected').\n";
  std::cout << "At their natural 2-in-374 weight, estimated full-campaign "
               "coverage: "
            << percent(est_coverage, 2)
            << " (paper: 99.8%).\n";

  htbench::BenchReport report("fig4_goshd_coverage");
  report.param("stride", stride)
      .param("seed_base", 2014)
      .metric("injections", static_cast<double>(total))
      .metric("manifested", static_cast<double>(manifested))
      .metric("detected", static_cast<double>(detected))
      .metric("probe_visible_missed", static_cast<double>(missed))
      .metric("false_alarms", static_cast<double>(false_alarms))
      .metric("sampled_coverage", coverage)
      .metric("probe_runs", static_cast<double>(probe_runs))
      .metric("probe_missed", static_cast<double>(probe_missed))
      .metric("est_full_campaign_coverage", est_coverage);
  report.write();
  return 0;
}
