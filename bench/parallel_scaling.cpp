// Parallel scaling bench + determinism gate (CI): run the same campaign
// grid through exec::ShardedCampaignRunner at 1/2/4/8 threads and a fleet
// stepping scenario through exec::ShardedFleetHost at the same thread
// counts, reporting jobs/sec and VM-steps/sec per thread count in
// BENCH_parallel_scaling.json.
//
// Exit status is the gate:
//  - byte-identical artifacts across ALL thread counts (outcome table,
//    merged telemetry snapshot, merged journal digest) — enforced
//    unconditionally; a single diverging byte is a failed run;
//  - >= 3x campaign throughput at 8 threads vs 1 — enforced only when the
//    host actually has >= 8 hardware threads (on a 1-core container the
//    curve is flat by physics, not by bug; the JSON still records it).
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"
#include "exec/sharded_campaign.hpp"
#include "exec/sharded_fleet.hpp"
#include "fi/campaign.hpp"
#include "fi/locations.hpp"
#include "workloads/make.hpp"

using namespace hvsim;
using namespace hypertap;

namespace {

double wall_seconds(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

const std::vector<os::KernelLocation>& locations() {
  static const auto l = fi::generate_locations(2014);
  return l;
}

/// The scaling grid: a real build_grid slice with the observation windows
/// shortened so one job is tens of milliseconds — enough work per job that
/// pool overhead is noise, small enough that the 4-point curve stays under
/// a minute of wall clock serially.
std::vector<fi::RunConfig> scaling_grid() {
  auto grid = fi::build_grid(locations(), 3, 2014);
  if (grid.size() > 96) grid.resize(96);
  for (auto& cfg : grid) {
    cfg.detect_threshold = 2'000'000'000;
    cfg.propagation_window = 4'000'000'000;
    cfg.max_workload_time = 4'000'000'000;
  }
  return grid;
}

struct CampaignPoint {
  int threads;
  double wall_s;
  double jobs_per_s;
  exec::CampaignReport report;
};

CampaignPoint run_campaign(int threads,
                           const std::vector<fi::RunConfig>& grid) {
  exec::CampaignOptions opts;
  opts.threads = threads;
  opts.per_job_telemetry = true;
  opts.per_job_journal = true;
  exec::ShardedCampaignRunner runner(locations(), opts);
  const auto t0 = std::chrono::steady_clock::now();
  auto report = runner.run(grid);
  const double wall = wall_seconds(t0);
  return CampaignPoint{threads, wall,
                       static_cast<double>(report.jobs_run) / wall,
                       std::move(report)};
}

/// Fleet stepping throughput: N busy VMs advanced 10 simulated seconds in
/// 250 ms epochs. No supervisor — this point isolates the parallel
/// stepping phase itself (the barrier work is measured by its absence).
struct FleetPoint {
  int threads;
  double wall_s;
  double vm_steps_per_s;
};

FleetPoint run_fleet(int threads) {
  constexpr int kVms = 4;
  hv::MultiVmHost host;
  for (int i = 0; i < kVms; ++i) {
    hv::MachineConfig mc;
    mc.num_vcpus = 2;
    mc.phys_mem_bytes = 8ull << 20;
    host.add_vm(mc);
  }
  for (int i = 0; i < kVms; ++i) {
    host.vm(i).kernel.register_locations(locations());
    host.vm(i).kernel.boot();
    workloads::MakeJobWorkload::Config mcfg;
    mcfg.units = 4000;  // stays busy for the whole window
    host.vm(i).kernel.spawn(
        "make", 1000, 1000, 1,
        std::make_unique<workloads::MakeJobWorkload>(mcfg, &locations(),
                                                     7'000 + i));
  }
  exec::ShardedFleetHost::Options fopts;
  fopts.threads = threads;
  exec::ShardedFleetHost sharded(host, fopts);
  const auto t0 = std::chrono::steady_clock::now();
  sharded.run_until(10'000'000'000);
  const double wall = wall_seconds(t0);
  return FleetPoint{threads, wall,
                    static_cast<double>(sharded.vm_steps()) / wall};
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> curve = {1, 2, 4, 8};
  const auto grid = scaling_grid();

  std::cout << "parallel_scaling: grid=" << grid.size()
            << " jobs, hw_threads=" << hw << "\n\n";
  std::cout << "threads  campaign_wall_s  jobs_per_s  fleet_vm_steps_per_s\n";

  htbench::BenchReport report("parallel_scaling");
  report.param("grid_jobs", static_cast<long long>(grid.size()));
  report.param("hw_threads", static_cast<long long>(hw));
  report.param("fleet_vms", 4);

  bool diverged = false;
  std::vector<CampaignPoint> points;
  for (const int t : curve) {
    points.push_back(run_campaign(t, grid));
    const auto fleet = run_fleet(t);
    const auto& p = points.back();
    std::printf("%7d  %15.3f  %10.1f  %20.1f\n", t, p.wall_s, p.jobs_per_s,
                fleet.vm_steps_per_s);
    const std::string k = "t" + std::to_string(t) + ".";
    report.metric(k + "campaign_wall_s", p.wall_s);
    report.metric(k + "jobs_per_s", p.jobs_per_s);
    report.metric(k + "fleet_vm_steps_per_s", fleet.vm_steps_per_s);
    report.metric(k + "steals", static_cast<double>(p.report.steals));

    // Determinism gate: every arm must reproduce the serial artifacts.
    const auto& ref = points.front();
    if (p.report.outcome_table != ref.report.outcome_table ||
        p.report.merged_metrics_json != ref.report.merged_metrics_json ||
        p.report.merged_journal_digest != ref.report.merged_journal_digest ||
        p.report.merged_journal_records != ref.report.merged_journal_records) {
      std::cerr << "DIVERGENCE at threads=" << t
                << ": parallel artifacts differ from serial reference\n";
      diverged = true;
    }
  }

  const double speedup8 = points.front().wall_s / points.back().wall_s;
  report.metric("speedup_8", speedup8);
  std::cout << "\nspeedup at 8 threads: " << speedup8 << "x\n";
  report.write();

  if (diverged) return 1;
  if (hw >= 8 && speedup8 < 3.0) {
    std::cerr << "FAIL: expected >= 3x speedup at 8 threads on a >= 8-way "
                 "host, got "
              << speedup8 << "x\n";
    return 1;
  }
  std::cout << "parallel_scaling: determinism gate PASSED\n";
  return 0;
}
