// Table III — Predicting Ninja's monitoring interval through the /proc
// side channel.
//
// An unprivileged guest process polls /proc/<ninja-pid>/stat and times the
// Sleep->Running transitions. For each configured O-Ninja interval
// (1/2/4/8 s) we report the predicted interval statistics over 30
// samples, as in the paper's Table III.
#include <iostream>

#include "attacks/registry.hpp"
#include "attacks/side_channel.hpp"
#include "bench_report.hpp"
#include "core/hypertap.hpp"
#include "util/stats.hpp"
#include "vmi/o_ninja.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

int main() {
  std::cout << "TABLE III: predicting Ninja's monitoring interval "
               "(seconds), 30 samples per row\n\n";
  TablePrinter tp({"Ninja's interval", "Predicted mean", "Min", "Max",
                   "SD"});

  htbench::BenchReport report("table3_side_channel");
  report.param("samples_per_row", 30);
  // Rows come from the shared scenario registry, not a local list: the
  // same catalog drives tests and the fuzzer's seed-corpus export.
  for (const auto& scenario :
       attacks::scenarios_of(attacks::ScenarioKind::kSideChannel)) {
    const u32 interval_s = scenario.interval_s;
    os::Vm vm;
    HyperTap ht(vm);  // attached but idle: the attack is guest-only
    vm.kernel.boot();

    vmi::ONinjaWorkload::Config ocfg;
    ocfg.interval_us = interval_s * 1'000'000;
    const u32 ninja_pid = vm.kernel.spawn(
        "ninja", 0, 0, 1,
        std::make_unique<vmi::ONinjaWorkload>(ocfg, nullptr));

    attacks::SideChannelProbe::Config scfg;
    scfg.target_pid = ninja_pid;
    auto probe_owned = std::make_unique<attacks::SideChannelProbe>(scfg);
    auto* probe = probe_owned.get();
    vm.kernel.spawn("attacker", 1000, 1000, 1, std::move(probe_owned), 0,
                    /*cpu=*/1);  // other vCPU: poll while ninja sleeps

    // Run until we have 31 wake-ups (30 intervals).
    while (probe->wake_times().size() < 31 &&
           vm.machine.now() < static_cast<SimTime>(interval_s) *
                                  40'000'000'000ll) {
      vm.machine.run_for(2'000'000'000);
    }

    Samples s;
    for (const double d : probe->predicted_intervals()) {
      s.add(d);
      if (s.count() >= 30) break;
    }
    tp.add_row({std::to_string(interval_s),
                format_double(s.mean(), 5), format_double(s.min(), 5),
                format_double(s.max(), 5), format_double(s.stddev(), 5)});
    const std::string key = "interval_" + std::to_string(interval_s) + "s";
    report.metric(key + ".predicted_mean_s", s.mean())
        .metric(key + ".min_s", s.min())
        .metric(key + ".max_s", s.max())
        .metric(key + ".stddev_s", s.stddev());
  }
  std::cout << tp.str();
  report.write();
  std::cout << "\npaper shape: predictions match the configured interval "
               "to sub-millisecond accuracy (SD < 1 ms), enabling timed "
               "transient attacks.\n";
  return 0;
}
