// Ablation — GOSHD's detection threshold (§VII-A2's design choice).
//
// The paper sets the threshold to 2x the profiled maximum scheduling
// timeslice (4 s). This ablation sweeps the threshold and reports the
// trade-off the choice optimizes: false alarms on healthy guests vs.
// detection latency on injected hangs.
#include <iostream>

#include "auditors/goshd.hpp"
#include "bench_report.hpp"
#include "core/hypertap.hpp"
#include "fi/campaign.hpp"
#include "fi/locations.hpp"
#include "util/stats.hpp"
#include "workloads/make.hpp"
#include "workloads/workload.hpp"

using namespace hvsim;
using namespace hypertap;
using hvsim::util::Samples;
using hvsim::util::TablePrinter;
using hvsim::util::format_double;

namespace {

/// Count false alarms over healthy runs at a given threshold.
int false_alarms(SimTime threshold, int runs) {
  int alarms = 0;
  const auto locs = fi::generate_locations();
  for (int r = 0; r < runs; ++r) {
    os::KernelConfig kc;
    kc.spawn_factory = workloads::standard_factory(&locs);
    hv::MachineConfig mc;
    mc.seed = 1000 + r;
    os::Vm vm(mc, kc);
    vm.kernel.register_locations(locs);
    HyperTap ht(vm);
    auditors::Goshd::Config gcfg;
    gcfg.threshold = threshold;
    ht.add_auditor(std::make_unique<auditors::Goshd>(2, gcfg));
    vm.kernel.boot();
    workloads::MakeJobWorkload::Config mcfg;
    mcfg.units = 40;
    vm.kernel.spawn("make", 1000, 1000, 1,
                    std::make_unique<workloads::MakeJobWorkload>(
                        mcfg, &locs, 7 + r));
    vm.machine.run_for(20'000'000'000ll);
    if (ht.alarms().any_of_type("vcpu-hang")) ++alarms;
  }
  return alarms;
}

/// Mean detection latency over injected hangs at a given threshold.
Samples hang_latency(SimTime threshold, int runs) {
  Samples lat;
  const auto locs = fi::generate_locations();
  for (int r = 0; r < runs; ++r) {
    fi::RunConfig cfg;
    cfg.workload = fi::WorkloadKind::kMakeJ2;
    cfg.location = static_cast<u16>((r * 7) % 100);
    cfg.fault_class = os::FaultClass::kMissingRelease;
    cfg.transient = false;
    cfg.detect_threshold = threshold;
    cfg.seed = 50 + r;
    const auto res = fi::run_one(cfg, locs);
    if (res.first_alarm > 0 && res.activation >= 0) {
      lat.add(static_cast<double>(res.first_alarm - res.activation) / 1e9);
    }
  }
  return lat;
}

}  // namespace

int main() {
  std::cout << "ABLATION: GOSHD detection threshold (paper: 2x profiled "
               "max timeslice = 4 s)\n\n";
  TablePrinter tp({"Threshold", "False alarms (healthy)",
                   "Hangs detected", "Median latency (s)"});
  htbench::BenchReport report("ablation_goshd_threshold");
  report.param("healthy_runs", 6).param("hang_runs", 8);
  for (const SimTime thr :
       {500'000'000ll, 1'000'000'000ll, 2'000'000'000ll, 4'000'000'000ll,
        8'000'000'000ll, 16'000'000'000ll}) {
    const int fa = false_alarms(thr, 6);
    const Samples lat = hang_latency(thr, 8);
    tp.add_row({format_double(static_cast<double>(thr) / 1e9, 1) + " s",
                std::to_string(fa) + "/6",
                std::to_string(lat.count()) + "/8",
                lat.empty() ? "-" : format_double(lat.percentile(50), 2)});
    const std::string key =
        "threshold_" + format_double(static_cast<double>(thr) / 1e9, 1) +
        "s";
    report.metric(key + ".false_alarms", fa)
        .metric(key + ".hangs_detected", lat.count());
    if (!lat.empty()) {
      report.metric(key + ".median_latency_s", lat.percentile(50));
    }
    std::cerr << "  threshold " << thr / 1'000'000'000 << "s done\n";
  }
  std::cout << tp.str();
  report.write();
  std::cout << "\nBelow the guest's natural scheduling quiet time the "
               "detector false-alarms; above it, latency grows linearly. "
               "2x the profiled maximum timeslice sits at the knee.\n";
  return 0;
}
