// Shared fault-injection sweep driver for the Fig. 4 / Fig. 5 benches.
//
// The paper's full campaign is 17,952 injections over 374 locations; the
// default here subsamples locations with a stride so the bench finishes
// in minutes, and HYPERTAP_FI_STRIDE=1 reproduces the full location set.
#pragma once

#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "fi/campaign.hpp"
#include "fi/locations.hpp"

namespace htbench {

using namespace hvsim;
using namespace hypertap;

struct SweepCase {
  fi::RunConfig cfg;
  fi::RunResult result;
};

inline int env_int(const char* name, int def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : def;
}

/// Run the campaign grid: every sampled location x 4 workloads x
/// {transient, persistent} x {non-preemptible, preemptible}.
inline std::vector<SweepCase> run_sweep(
    const std::vector<os::KernelLocation>& locations, int stride,
    u64 seed_base = 1,
    const std::function<void(std::size_t, std::size_t)>& progress = {}) {
  const std::vector<fi::RunConfig> grid =
      fi::build_grid(locations, stride, seed_base);

  std::vector<SweepCase> out;
  out.reserve(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    SweepCase c;
    c.cfg = grid[i];
    c.result = fi::run_one(c.cfg, locations);
    out.push_back(std::move(c));
    if (progress) progress(i + 1, grid.size());
  }
  return out;
}

}  // namespace htbench
